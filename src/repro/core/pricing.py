"""Price search for a single bundle (paper, Section 4.2).

The seller works with a *price list* of ``T`` discretized levels.  For a
bundle with willingness-to-pay vector ``w`` the expected revenue at price
``p`` is ``p · Σ_u P(adopt | p, w_u)`` (Equations 2 and 5); the optimal price
is found by scanning the levels, which costs O(M) per bundle.

Two pricing problems are solved here:

* **Pure pricing** (:func:`price_pure`, :func:`price_pure_batch`) — the
  bundle is offered alone, so its price is independent of everything else.
* **Mixed bundle pricing** (:func:`price_mixed_bundle`,
  :func:`price_mixed_bundle_batch`) — a bundle ``b = b1 ∪ b2`` is offered
  *in addition to* its components, whose prices are already fixed (the
  paper's incremental policy).  The bundle price is constrained to the open
  interval ``(max(p1, p2), p1 + p2)`` (the usual mixed-bundling constraints
  of Guiltinan [18]) and is chosen to maximize the *additional* expected
  revenue over the covered offers' choice state, under the consumer-choice
  model of :mod:`repro.core.choice`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adoption import AdoptionModel, StepAdoption
from repro.core.bundle import Bundle
from repro.errors import PricingError, ValidationError
from repro.utils.validation import check_positive_int

#: Paper default (Section 4.2): "For experiments, we use 100 buckets".
DEFAULT_PRICE_LEVELS = 100

#: Default element budget for chunked buffers (~32 MB of float64 each):
#: the batch kernels' (levels × users × columns) temporaries here, and the
#: streaming fill buffers of :mod:`repro.core.kernels` (which re-exports
#: this).  Callers that never think about chunking stay memory-bounded;
#: passing ``None`` explicitly disables chunking everywhere.
DEFAULT_CHUNK_ELEMENTS = 4_000_000

#: Relative tolerance for "willingness to pay >= price level" comparisons.
#: Ratings-derived WTP values coincide exactly with grid levels (e.g. the
#: rating-4 class sits at level 80 of 100), and linspace arithmetic is off
#: by an ulp — without a tolerance whole rating classes drop a bucket and
#: revenue jumps discontinuously across otherwise-equivalent inputs.
LEVEL_RTOL = 1e-9


class PriceGrid:
    """Candidate price levels for the optimal-price scan.

    Modes
    -----
    ``"linspace"`` (paper's setting):
        ``T`` equi-spaced levels covering ``(0, max effective WTP]``.
    ``"exact"``:
        Every distinct positive effective-WTP value is a candidate.  Under
        the step adoption model this is provably optimal (the revenue curve
        only changes at WTP values); used as a reference in tests.
    Explicit ``levels``:
        An arbitrary ascending price list, e.g. psychological price points.
    """

    def __init__(
        self,
        n_levels: int = DEFAULT_PRICE_LEVELS,
        mode: str = "linspace",
        levels=None,
    ) -> None:
        if levels is not None:
            array = np.asarray(levels, dtype=np.float64)
            if array.ndim != 1 or array.size == 0:
                raise ValidationError("explicit price levels must be a non-empty 1-D array")
            if np.any(array <= 0) or not np.all(np.isfinite(array)):
                raise ValidationError("explicit price levels must be finite and positive")
            if np.any(np.diff(array) <= 0):
                raise ValidationError("explicit price levels must be strictly ascending")
            self._explicit: np.ndarray | None = array.copy()
            self.mode = "explicit"
            self.n_levels = int(array.size)
            return
        if mode not in ("linspace", "exact"):
            raise ValidationError(f"unknown price grid mode: {mode!r}")
        self._explicit = None
        self.mode = mode
        self.n_levels = check_positive_int(n_levels, "n_levels")

    def candidates(self, effective_wtp: np.ndarray) -> np.ndarray:
        """Ascending candidate prices for a bundle with this effective WTP."""
        if self._explicit is not None:
            return self._explicit
        values = np.asarray(effective_wtp, dtype=np.float64)
        positive = values[values > 0]
        if positive.size == 0:
            return np.empty(0, dtype=np.float64)
        if self.mode == "exact":
            return np.unique(positive)
        top = float(positive.max())
        return np.linspace(top / self.n_levels, top, self.n_levels)

    def __repr__(self) -> str:
        if self._explicit is not None:
            return f"PriceGrid(levels=<{self.n_levels} explicit>)"
        return f"PriceGrid(n_levels={self.n_levels}, mode={self.mode!r})"


@dataclass(frozen=True)
class PricedBundle:
    """A bundle with its revenue-maximizing price (Equation 2).

    ``revenue`` and ``buyers`` are expectations under the adoption model;
    with :class:`~repro.core.adoption.StepAdoption` they are exact counts.
    """

    bundle: Bundle
    price: float
    revenue: float
    buyers: float

    @property
    def size(self) -> int:
        return self.bundle.size

    def __repr__(self) -> str:
        return (
            f"PricedBundle({self.bundle!r}, price={self.price:.4f}, "
            f"revenue={self.revenue:.4f}, buyers={self.buyers:.2f})"
        )


@dataclass(frozen=True)
class MixedMerge:
    """Result of pricing ``b1 ∪ b2`` offered alongside ``b1`` and ``b2``.

    ``gain`` is the expected *additional* revenue over the components-only
    offer; ``upgraded`` the expected number of consumers choosing the new
    bundle.  ``feasible`` is False when the Guiltinan price interval
    contains no grid level or the bundle attracts nobody.
    """

    bundle: Bundle
    price: float
    gain: float
    upgraded: float
    feasible: bool


# ------------------------------------------------------- deterministic sums
def tree_sum(values: np.ndarray, axis: int) -> np.ndarray:
    """Sum along *axis* with a fixed halving tree (float64 accumulation).

    numpy's built-in pairwise summation blocks along the innermost memory
    loop, so the accumulation order of ``array.sum(axis=...)`` — and hence
    the last-ulp result — can change with the shape of the *other* axes.
    The streaming kernels price candidates in chunks whose width depends on
    the ``chunk_elements`` budget, which would make the float-accumulation
    paths (sigmoid adoption, explicit grids) chunk-variant to ulps.

    This reduction instead folds the upper half of the axis onto the lower
    half until one slice remains: the tree's shape depends only on the axis
    *length* (the number of users — never chunked), so results are
    bit-identical for every chunk width and worker count.  Cost is one
    float64 copy of the block plus the same number of additions as a plain
    sum.
    """
    work = np.array(np.moveaxis(values, axis, 0), dtype=np.float64, copy=True)
    if work.shape[0] == 0:
        return np.zeros(work.shape[1:], dtype=np.float64)
    n = work.shape[0]
    while n > 1:
        half = (n + 1) // 2
        work[: n - half] += work[half:n]
        n = half
    return work[0]


# --------------------------------------------------------------------- pure
def _expected_buyers(effective: np.ndarray, levels: np.ndarray, adoption: AdoptionModel) -> np.ndarray:
    """Expected adopter counts at each level, for one bundle.

    ``effective`` holds per-user ``α·w + ε`` values so the adoption decision
    is simply a comparison against the price.
    """
    if adoption.is_deterministic:
        order = np.sort(effective)
        compare = levels - LEVEL_RTOL * (1.0 + np.abs(levels))
        return effective.size - np.searchsorted(order, compare, side="left")
    # Equation 6 exactly: σ(γ(effective − p)) summed over users.
    gamma = getattr(adoption, "gamma", 1.0)
    z = np.clip(gamma * (effective[None, :] - levels[:, None]), -500.0, 500.0)
    return (1.0 / (1.0 + np.exp(-z))).sum(axis=1)


def price_pure(
    wtp: np.ndarray,
    adoption: AdoptionModel | None = None,
    grid: PriceGrid | None = None,
    bundle: Bundle | None = None,
) -> PricedBundle:
    """Revenue-maximizing price for a bundle offered on its own.

    Returns a :class:`PricedBundle`; a bundle nobody values gets price and
    revenue 0.  Ties in revenue break toward the lower price (more buyers,
    more consumer surplus, same revenue).
    """
    adoption = adoption or StepAdoption()
    grid = grid or PriceGrid()
    wtp = np.asarray(wtp, dtype=np.float64)
    if wtp.ndim != 1:
        raise ValidationError(f"wtp must be 1-D, got shape {wtp.shape}")
    placeholder = bundle if bundle is not None else Bundle.of(0)
    # Zero-WTP consumers are outside the bundle's market (see adoption docs).
    wtp = wtp[wtp > 0]
    if wtp.size == 0:
        return PricedBundle(placeholder, 0.0, 0.0, 0.0)
    effective = adoption.alpha * wtp + adoption.epsilon
    if adoption.is_deterministic:
        # The deterministic scan works off the sorted order anyway (see
        # _expected_buyers), so it shares one code path with incremental
        # callers that maintain the sorted array across population deltas.
        return price_pure_sorted(
            np.sort(effective), adoption, grid, bundle=placeholder
        )
    levels = grid.candidates(effective)
    if levels.size == 0:
        return PricedBundle(placeholder, 0.0, 0.0, 0.0)
    buyers = _expected_buyers(effective, levels, adoption)
    revenue = levels * buyers
    best = int(np.argmax(revenue))  # argmax returns the first (lowest) level on ties
    if revenue[best] <= 0:
        return PricedBundle(placeholder, 0.0, 0.0, 0.0)
    return PricedBundle(placeholder, float(levels[best]), float(revenue[best]), float(buyers[best]))


def price_pure_sorted(
    sorted_effective: np.ndarray,
    adoption: AdoptionModel | None = None,
    grid: PriceGrid | None = None,
    bundle: Bundle | None = None,
) -> PricedBundle:
    """:func:`price_pure` from a pre-sorted in-market effective-WTP array.

    ``sorted_effective`` holds the ascending per-user ``α·w + ε`` values of
    the consumers with positive bundle WTP.  The level grid, the
    ``LEVEL_RTOL`` slack, and the tie-break all use the same arithmetic as
    :func:`price_pure` — which delegates its deterministic branch here — so
    a caller that maintains the sorted array incrementally (one
    sorted-delete/insert per population delta; the sorted order of a float
    multiset does not depend on how it was reached) gets prices, revenues,
    and buyer counts bit-identical to a cold re-price.  Deterministic
    adoption only: the sigmoid expectation sums users in population order.
    """
    adoption = adoption or StepAdoption()
    grid = grid or PriceGrid()
    if not adoption.is_deterministic:
        raise PricingError(
            "price_pure_sorted requires a deterministic adoption model"
        )
    placeholder = bundle if bundle is not None else Bundle.of(0)
    effective = np.asarray(sorted_effective, dtype=np.float64)
    if effective.size == 0:
        return PricedBundle(placeholder, 0.0, 0.0, 0.0)
    levels = grid.candidates(effective)
    if levels.size == 0:
        return PricedBundle(placeholder, 0.0, 0.0, 0.0)
    compare = levels - LEVEL_RTOL * (1.0 + np.abs(levels))
    buyers = effective.size - np.searchsorted(effective, compare, side="left")
    revenue = levels * buyers
    best = int(np.argmax(revenue))  # argmax returns the first (lowest) level on ties
    if revenue[best] <= 0:
        return PricedBundle(placeholder, 0.0, 0.0, 0.0)
    return PricedBundle(placeholder, float(levels[best]), float(revenue[best]), float(buyers[best]))


def price_pure_batch(
    wtp_columns: np.ndarray,
    adoption: AdoptionModel | None = None,
    grid: PriceGrid | None = None,
    chunk_elements: int | None = DEFAULT_CHUNK_ELEMENTS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`price_pure` over the columns of an ``(M, B)`` array.

    Returns ``(prices, revenues, buyers)`` arrays of length ``B``.  This is
    the hot path of the configuration algorithms: one call prices every
    candidate pair of an iteration.  Every computation is column-independent,
    so results are bit-identical however the caller batches the columns —
    the streaming kernels of :mod:`repro.core.kernels` rely on this.

    For the deterministic model the scan uses a per-column histogram of
    effective WTP over the grid (O(M + T) per column, fully vectorized).
    For the sigmoid model it uses the paper's own consumer-bucketing device
    (Section 4.2): users are bucketed by effective WTP, and because bucket
    centres and price levels share one linear grid, only ``2T−1`` sigmoid
    evaluations are needed per column.  ``chunk_elements`` bounds the
    explicit-grid and sigmoid paths' (levels × users × columns) temporaries
    (bounded at the 4M-element default for callers that never think about
    chunking; ``None`` disables the bound).  Those paths reduce per-user
    values through :func:`tree_sum`, so the budget never changes a bit of
    the result.
    """
    adoption = adoption or StepAdoption()
    grid = grid or PriceGrid()
    columns = np.asarray(wtp_columns, dtype=np.float64)
    if columns.ndim != 2:
        raise ValidationError(f"wtp_columns must be 2-D, got shape {columns.shape}")
    n_users, n_bundles = columns.shape
    if grid.mode == "explicit":
        return _price_explicit_batch(columns, adoption, grid.candidates(None), chunk_elements)
    if grid.mode == "exact":
        return _price_exact_batch(columns, adoption)

    effective = adoption.alpha * columns + adoption.epsilon
    tops = effective.max(axis=0)
    n_levels = grid.n_levels
    prices = np.zeros(n_bundles)
    revenues = np.zeros(n_bundles)
    buyers_out = np.zeros(n_bundles)
    live = tops > 0
    if not np.any(live):
        return prices, revenues, buyers_out

    eff_live = effective[:, live]
    tops_live = tops[live]
    step = tops_live / n_levels  # level t (1-based) sits at t * step
    # Bucket users: level index such that user adopts at levels <= idx.
    # The tolerance keeps WTP values that sit exactly on a level (common
    # with ratings-derived WTP) in the bucket they belong to.
    with np.errstate(divide="ignore", invalid="ignore"):
        idx = np.floor(eff_live / step[None, :] + 1e-6).astype(np.int64)
    np.clip(idx, 0, n_levels, out=idx)

    if adoption.is_deterministic:
        # buyers at level t = #users with effective >= t*step = #users with idx >= t.
        # bincount over a flattened (level, column) key is an order of
        # magnitude faster than np.add.at and produces the same exact
        # integer counts.
        n_cols = idx.shape[1]
        flat = idx * n_cols + np.arange(n_cols)[None, :]
        hist = (
            np.bincount(flat.ravel(), minlength=(n_levels + 1) * n_cols)
            .reshape(n_levels + 1, n_cols)
            .astype(np.float64)
        )
        from_top = np.cumsum(hist[::-1, :], axis=0)[::-1, :]
        buyers_levels = from_top[1:, :]  # level t (1-based) -> count idx >= t
        levels = step[None, :] * np.arange(1, n_levels + 1)[:, None]
        revenue_levels = levels * buyers_levels
    else:
        gamma = getattr(adoption, "gamma", 1.0)
        levels = step[None, :] * np.arange(1, n_levels + 1)[:, None]
        buyers_levels = _sigmoid_buyers_exact(
            columns[:, live], eff_live, levels, gamma, chunk_elements=chunk_elements
        )
        revenue_levels = levels * buyers_levels

    best = np.argmax(revenue_levels, axis=0)
    take = np.arange(best.size)
    best_rev = revenue_levels[best, take]
    best_price = levels[best, take]
    best_buyers = buyers_levels[best, take]
    positive = best_rev > 0
    live_indices = np.flatnonzero(live)
    prices[live_indices[positive]] = best_price[positive]
    revenues[live_indices[positive]] = best_rev[positive]
    buyers_out[live_indices[positive]] = best_buyers[positive]
    return prices, revenues, buyers_out


def _sigmoid_buyers_exact(
    wtp_columns: np.ndarray,
    effective: np.ndarray,
    levels: np.ndarray,
    gamma: float,
    chunk_elements: int | None = DEFAULT_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Exact expected buyers per level: Σ_u σ(γ(effective_u − p_t)).

    Computed per (level, user, column) in memory-bounded chunks
    (``chunk_elements=None`` disables chunking).  Consumers with zero
    willingness to pay never adopt (see the adoption module); a
    consumer-bucketing approximation (the paper's own device) was tried
    here but misplaces the rating classes that sit exactly on grid levels,
    so the exact scan is used — it is the hot path only for the stochastic
    sweep experiments, which run at reduced scale.  The per-user reduction
    goes through :func:`tree_sum`, so results are bit-identical for every
    chunk width.
    """
    n_users, n_cols = effective.shape
    n_levels = levels.shape[0]
    buyers = np.empty((n_levels, n_cols), dtype=np.float64)
    in_market = wtp_columns > 0
    budget = chunk_elements if chunk_elements is not None else n_users * n_levels * n_cols
    chunk = max(1, budget // max(1, n_users * n_levels))
    for start in range(0, n_cols, chunk):
        stop = min(start + chunk, n_cols)
        z = np.clip(
            gamma * (effective[None, :, start:stop] - levels[:, None, start:stop]),
            -500.0,
            500.0,
        )
        probs = 1.0 / (1.0 + np.exp(-z))
        probs *= in_market[None, :, start:stop]
        buyers[:, start:stop] = tree_sum(probs, axis=1)
    return buyers


def _price_explicit_batch(
    columns: np.ndarray,
    adoption: AdoptionModel,
    levels: np.ndarray,
    chunk_elements: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized explicit-grid pricing (arbitrary ascending price list).

    Replaces the former per-column loop of scalar :func:`price_pure` calls:
    adopter counts for all levels and a chunk of columns are computed in one
    broadcast comparison (deterministic) or sigmoid evaluation (stochastic).
    Semantics match :func:`price_pure` exactly — zero-WTP consumers are out
    of the market, revenue ties break toward the lower price, and columns
    whose best revenue is non-positive come back as all zeros.
    """
    n_users, n_bundles = columns.shape
    n_levels = levels.size
    prices = np.zeros(n_bundles)
    revenues = np.zeros(n_bundles)
    buyers_out = np.zeros(n_bundles)
    if n_bundles == 0 or n_levels == 0:
        return prices, revenues, buyers_out
    effective = adoption.alpha * columns + adoption.epsilon
    in_market = columns > 0
    deterministic = adoption.is_deterministic
    if deterministic:
        compare = levels - LEVEL_RTOL * (1.0 + np.abs(levels))
    gamma = getattr(adoption, "gamma", 1.0)
    budget = chunk_elements if chunk_elements is not None else n_users * n_levels * n_bundles
    chunk = max(1, budget // max(1, n_users * n_levels))
    for start in range(0, n_bundles, chunk):
        stop = min(start + chunk, n_bundles)
        eff = effective[:, start:stop]
        market = in_market[:, start:stop]
        if deterministic:
            # Integer adopter counts: exact under any chunking.
            adopter = (eff[None, :, :] >= compare[:, None, None]) & market[None, :, :]
            buyers_levels = adopter.sum(axis=1).astype(np.float64)  # (T, c)
        else:
            z = np.clip(gamma * (eff[None, :, :] - levels[:, None, None]), -500.0, 500.0)
            probs = 1.0 / (1.0 + np.exp(-z))
            probs *= market[None, :, :]
            buyers_levels = tree_sum(probs, axis=1)
        revenue_levels = levels[:, None] * buyers_levels
        best = np.argmax(revenue_levels, axis=0)  # first (lowest) level on ties
        span = np.arange(stop - start)
        best_rev = revenue_levels[best, span]
        positive = best_rev > 0
        window = slice(start, stop)
        prices[window] = np.where(positive, levels[best], 0.0)
        revenues[window] = np.where(positive, best_rev, 0.0)
        buyers_out[window] = np.where(positive, buyers_levels[best, span], 0.0)
    return prices, revenues, buyers_out


def _price_exact_batch(
    columns: np.ndarray, adoption: AdoptionModel
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact pricing (all WTP values as candidates) for the step model."""
    if not adoption.is_deterministic:
        raise PricingError("exact grid mode requires a deterministic adoption model")
    effective = adoption.alpha * columns + adoption.epsilon
    n_users, n_bundles = effective.shape
    sorted_desc = -np.sort(-effective, axis=0)
    ranks = np.arange(1, n_users + 1, dtype=np.float64)[:, None]
    revenue = sorted_desc * ranks
    revenue[sorted_desc <= 0] = 0.0
    best = np.argmax(revenue, axis=0)
    take = np.arange(n_bundles)
    prices = sorted_desc[best, take]
    revenues = revenue[best, take]
    buyers = ranks[best, 0]
    dead = revenues <= 0
    prices = np.where(dead, 0.0, prices)
    revenues = np.where(dead, 0.0, revenues)
    buyers = np.where(dead, 0.0, buyers)
    return prices, revenues, buyers


# -------------------------------------------------------------------- mixed
#: Selectable kernels for the streamed mixed-merge scans.  ``"band"`` is the
#: original O(T'·M)-per-pair level scan (the bit-reference the equivalence
#: tests pin against); ``"sorted"`` is the O(M log M + T) margin-sorted
#: prefix-sum kernel (deterministic adoption only); ``"auto"`` resolves to
#: ``"sorted"`` when the adoption model is deterministic and to ``"band"``
#: otherwise.
MIXED_KERNELS = ("auto", "band", "sorted")


def check_mixed_kernel(mixed_kernel: str) -> str:
    """Validate a mixed-kernel selector (one of :data:`MIXED_KERNELS`)."""
    if mixed_kernel not in MIXED_KERNELS:
        raise ValidationError(
            f"mixed_kernel must be one of {MIXED_KERNELS}, got {mixed_kernel!r}"
        )
    return mixed_kernel


def resolve_mixed_kernel(mixed_kernel: str, adoption: AdoptionModel) -> str:
    """Resolve ``"auto"`` to a concrete kernel for *adoption*.

    The sorted kernel exploits that a deterministic upgrade decision is a
    single threshold on the per-user margin; sigmoid adoption weights every
    user at every level, so ``"auto"`` keeps the band kernel there.
    Explicitly requesting ``"sorted"`` under stochastic adoption is an
    error rather than a silent fallback.
    """
    check_mixed_kernel(mixed_kernel)
    if mixed_kernel == "auto":
        return "sorted" if adoption.is_deterministic else "band"
    if mixed_kernel == "sorted" and not adoption.is_deterministic:
        raise PricingError(
            "the sorted mixed kernel requires a deterministic adoption model; "
            "use mixed_kernel='band' or 'auto' for stochastic adoption"
        )
    return mixed_kernel


def feasible_levels(
    grid: PriceGrid, effective: np.ndarray, floor: float, ceiling: float
) -> np.ndarray:
    """Grid levels strictly inside the mixed-bundling interval (floor, ceiling)."""
    levels = grid.candidates(effective)
    if levels.size == 0:
        return levels
    return levels[(levels > floor) & (levels < ceiling)]


def price_mixed_bundle(
    bundle_wtp: np.ndarray,
    base_score: np.ndarray,
    base_pay: np.ndarray,
    floor: float,
    ceiling: float,
    adoption: AdoptionModel | None = None,
    grid: PriceGrid | None = None,
    bundle: Bundle | None = None,
) -> MixedMerge:
    """Price a bundle offered on top of an existing sub-offer state.

    ``base_score``/``base_pay`` describe the per-consumer choice state of
    the offers the bundle would cover (see
    :class:`repro.core.choice.SubtreeState`): under deterministic adoption,
    the best achievable surplus and the payment at that choice; under
    stochastic adoption, the log partition function and the expected
    payment.  The bundle price is searched over the grid levels strictly
    inside ``(floor, ceiling)`` — the Guiltinan constraints with the
    covered offers' prices — maximizing the expected *additional* revenue

        gain(p) = Σ_u  P(upgrade at p) · (p − base_pay_u),

    where P(upgrade) is an indicator ``u_b ≥ base_score`` (deterministic;
    ties toward the bundle, the paper's Table 1 convention) or
    ``σ(u_b − base_score)`` (multinomial logit, the exact multi-option
    generalization of Equation 6).
    """
    adoption = adoption or StepAdoption()
    grid = grid or PriceGrid()
    placeholder = bundle if bundle is not None else Bundle.of(0)
    w_b = np.asarray(bundle_wtp, dtype=np.float64)
    effective = adoption.alpha * w_b + adoption.epsilon
    levels = feasible_levels(grid, effective, floor, ceiling)
    if levels.size == 0 or ceiling <= floor:
        return MixedMerge(placeholder, 0.0, 0.0, 0.0, feasible=False)
    gamma = 1.0 if adoption.is_deterministic else getattr(adoption, "gamma", 1.0)
    utility = gamma * (effective[None, :] - levels[:, None])  # (T', M)
    if adoption.is_deterministic:
        tol = LEVEL_RTOL * (1.0 + np.abs(levels))[:, None]
        take = (utility >= base_score[None, :] - tol) & (w_b > 0)[None, :]
    else:
        take = 1.0 / (1.0 + np.exp(-np.clip(utility - base_score[None, :], -500.0, 500.0)))
        take = take * (w_b > 0)[None, :]
    gains = (take * (levels[:, None] - base_pay[None, :])).sum(axis=1)
    upgraded = take.sum(axis=1).astype(np.float64)
    best = int(np.argmax(gains))
    return MixedMerge(
        bundle=placeholder,
        price=float(levels[best]),
        gain=float(gains[best]),
        upgraded=float(upgraded[best]),
        feasible=True,
    )


def price_mixed_bundle_batch(
    bundle_wtps: np.ndarray,
    base_scores: np.ndarray,
    base_pays: np.ndarray,
    floors: np.ndarray,
    ceilings: np.ndarray,
    adoption: AdoptionModel | None = None,
    grid: PriceGrid | None = None,
    chunk_elements: int | None = DEFAULT_CHUNK_ELEMENTS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`price_mixed_bundle` across ``P`` candidate merges.

    All per-consumer inputs are column-stacked ``(M, P)`` arrays; ``floors``
    and ``ceilings`` are ``(P,)``.  Returns ``(prices, gains, upgraded,
    feasible)``.  Requires a linspace grid (the algorithms' hot path); grid
    levels outside a pair's Guiltinan interval are masked out.
    ``chunk_elements`` bounds the (levels × users × pairs) temporaries;
    ``None`` disables chunking — the same convention as
    :func:`price_pure_batch`.
    """
    adoption = adoption or StepAdoption()
    grid = grid or PriceGrid()
    if grid.mode != "linspace":
        raise PricingError("batch mixed pricing requires a linspace grid")
    w_b = np.asarray(bundle_wtps, dtype=np.float64)
    if w_b.ndim != 2:
        raise ValidationError(f"bundle_wtps must be 2-D, got shape {w_b.shape}")
    n_users, n_pairs = w_b.shape
    floors = np.asarray(floors, dtype=np.float64)
    ceilings = np.asarray(ceilings, dtype=np.float64)
    effective = adoption.alpha * w_b + adoption.epsilon

    prices = np.zeros(n_pairs)
    gains = np.full(n_pairs, -np.inf)
    upgraded = np.zeros(n_pairs)
    feasible = np.zeros(n_pairs, dtype=bool)

    n_levels = grid.n_levels
    tops = effective.max(axis=0)
    gamma = 1.0 if adoption.is_deterministic else getattr(adoption, "gamma", 1.0)
    deterministic = adoption.is_deterministic

    budget = chunk_elements if chunk_elements is not None else n_users * n_levels * n_pairs
    chunk = max(1, budget // max(1, n_users * n_levels))
    level_ranks = np.arange(1, n_levels + 1, dtype=np.float64)
    for start in range(0, n_pairs, chunk):
        stop = min(start + chunk, n_pairs)
        width = stop - start
        tops_c = tops[start:stop]
        all_levels = level_ranks[:, None] * (tops_c[None, :] / n_levels)  # (T, c)
        valid = (all_levels > floors[None, start:stop]) & (
            all_levels < ceilings[None, start:stop]
        )
        valid &= tops_c[None, :] > 0
        has_level = valid.any(axis=0)
        feasible[start:stop] = has_level
        if not np.any(has_level):
            continue
        # Only the contiguous band of levels that intersects some pair's
        # Guiltinan interval is ever selected (everything else is masked to
        # -inf below), so the O(T·M·c) work is restricted to that band.
        # Level rows are computed independently — each (level, pair) gain
        # reduces over the same per-user values in the same order — so the
        # surviving results are bit-identical to the full-grid scan.
        band_rows = np.flatnonzero(valid.any(axis=1))
        lo, hi = int(band_rows[0]), int(band_rows[-1]) + 1
        levels = all_levels[lo:hi]  # (T', c)
        utility = effective[None, :, start:stop] - levels[:, None, :]  # (T', M, c)
        if gamma != 1.0:
            utility *= gamma
        in_market = (w_b[:, start:stop] > 0)[None, :, :]
        delta = levels[:, None, :] - base_pays[None, :, start:stop]
        if deterministic:
            tol = LEVEL_RTOL * (1.0 + np.abs(levels))[:, None, :]
            take = (utility >= base_scores[None, :, start:stop] - tol) & in_market
            # Gains accumulate per-user payments sequentially (the non-inner
            # reduction axis), so this path is chunk-invariant for widths
            # ≥ 2; upgraded counts are integer-exact.  Kept on the plain sum
            # to preserve bit-identity with the seed snapshot.
            np.multiply(take, delta, out=delta)
            gain_band = delta.sum(axis=1)
            upg_band = take.sum(axis=1).astype(np.float64)
        else:
            take = 1.0 / (
                1.0
                + np.exp(
                    -np.clip(utility - base_scores[None, :, start:stop], -500.0, 500.0)
                )
            )
            take = take * in_market
            # Probability sums are float accumulations: fixed-tree reduction
            # keeps the sigmoid path bit-stable under any chunk width.
            np.multiply(take, delta, out=delta)
            gain_band = tree_sum(delta, axis=1)
            upg_band = tree_sum(take, axis=1)
        gain_levels = np.full((n_levels, width), -np.inf)
        gain_levels[lo:hi] = gain_band
        upg_levels = np.zeros((n_levels, width))
        upg_levels[lo:hi] = upg_band
        gain_levels = np.where(valid, gain_levels, -np.inf)
        best = np.argmax(gain_levels, axis=0)
        span = np.arange(width)
        prices[start:stop] = np.where(has_level, all_levels[best, span], 0.0)
        gains[start:stop] = np.where(has_level, gain_levels[best, span], -np.inf)
        upgraded[start:stop] = np.where(has_level, upg_levels[best, span], 0.0)
    return prices, gains, upgraded, feasible


def price_mixed_bundle_batch_sorted(
    bundle_wtps: np.ndarray,
    base_scores: np.ndarray,
    base_pays: np.ndarray,
    floors: np.ndarray,
    ceilings: np.ndarray,
    adoption: AdoptionModel | None = None,
    grid: PriceGrid | None = None,
    chunk_elements: int | None = DEFAULT_CHUNK_ELEMENTS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort-based :func:`price_mixed_bundle_batch` for deterministic adoption.

    Under the step model, user ``u`` upgrades to the merged bundle at price
    ``p`` iff ``p − tol(p) ≤ margin_u`` where ``margin_u = effective_u −
    base_score_u`` — a single threshold per level.  So for one pair

        gain(p) = p · #{margin ≥ p − tol}  −  Σ(base_pay | margin ≥ p − tol),

    and both aggregates fall out of the margin-sorted order with prefix
    sums: one sort per pair, then every feasible Guiltinan level costs one
    ``searchsorted`` — O(M log M + T) instead of the band kernel's O(T'·M).
    As an exact refinement, only margins *inside* the feasible band are
    sorted: users at or above the top level's threshold upgrade at every
    feasible level (their count and payment are folded in as constants), so
    the sort handles just the users whose decision actually varies across
    the band — typically a small fraction of M.

    The level grid and the ``LEVEL_RTOL`` slack are computed with identical
    arithmetic to the band kernel; the threshold test is the band kernel's
    comparison rearranged (``margin ≥ level − tol`` versus ``effective −
    level ≥ score − tol``), which can only disagree for a margin within an
    ulp of the slack boundary itself — ~1e7 ulps away from the on-grid WTP
    values the slack protects.  ``gains`` differ from the band kernel by
    float accumulation order (payments are summed margin-sorted here,
    user-ordered there), i.e. to ~1e-9 relative.  Every per-pair
    computation is independent and sequentially ordered, so results are
    bit-identical for any ``chunk_elements`` and worker count
    (``chunk_elements`` is accepted for interface symmetry; per-pair work
    is already O(M)-bounded).
    """
    adoption = adoption or StepAdoption()
    grid = grid or PriceGrid()
    if grid.mode != "linspace":
        raise PricingError("batch mixed pricing requires a linspace grid")
    if not adoption.is_deterministic:
        raise PricingError(
            "the sorted mixed kernel requires a deterministic adoption model"
        )
    w_b = np.asarray(bundle_wtps, dtype=np.float64)
    if w_b.ndim != 2:
        raise ValidationError(f"bundle_wtps must be 2-D, got shape {w_b.shape}")
    n_users, n_pairs = w_b.shape
    floors = np.asarray(floors, dtype=np.float64)
    ceilings = np.asarray(ceilings, dtype=np.float64)
    effective = adoption.alpha * w_b + adoption.epsilon

    prices = np.zeros(n_pairs)
    gains = np.full(n_pairs, -np.inf)
    upgraded = np.zeros(n_pairs)
    feasible = np.zeros(n_pairs, dtype=bool)
    if n_pairs == 0 or n_users == 0:
        return prices, gains, upgraded, feasible

    n_levels = grid.n_levels
    tops = effective.max(axis=0)
    level_ranks = np.arange(1, n_levels + 1, dtype=np.float64)
    for k in range(n_pairs):
        top = tops[k]
        if top <= 0:
            continue
        # Identical level arithmetic to the band kernel: rank · (top / T).
        levels = level_ranks * (top / n_levels)
        valid = (levels > floors[k]) & (levels < ceilings[k])
        if not valid.any():
            continue
        feasible[k] = True
        # Ascending levels make the Guiltinan interval a contiguous band.
        rows = np.flatnonzero(valid)
        lv = levels[rows[0] : rows[-1] + 1]
        compare = lv - LEVEL_RTOL * (1.0 + np.abs(lv))
        column = effective[:, k]
        # Out-of-market users (zero WTP) sort to -inf: below every finite
        # threshold, so they never count and never contribute payment.
        margin = np.where(w_b[:, k] > 0, column - base_scores[:, k], -np.inf)
        pay = base_pays[:, k]
        # Users at or above the top threshold upgrade at every band level.
        always = margin >= compare[-1]
        n_always = int(np.count_nonzero(always))
        pay_always = float(pay[always].sum())
        if compare.size == 1:
            counts = np.array([float(n_always)])
            tails = np.array([pay_always])
        else:
            varying = (margin >= compare[0]) & ~always
            mid_margin = margin[varying]
            order = np.argsort(mid_margin)
            mid_sorted = mid_margin[order]
            mid_pay_prefix = np.concatenate(([0.0], np.cumsum(pay[varying][order])))
            # First sorted position at or above each threshold: everything
            # from there up is in the level's upgrade set.
            idx = np.searchsorted(mid_sorted, compare, side="left")
            counts = n_always + (mid_sorted.size - idx).astype(np.float64)
            tails = pay_always + (mid_pay_prefix[-1] - mid_pay_prefix[idx])
        gain_band = lv * counts - tails
        best = int(np.argmax(gain_band))  # first (lowest) level on ties
        prices[k] = lv[best]
        gains[k] = gain_band[best]
        upgraded[k] = counts[best]
    return prices, gains, upgraded, feasible

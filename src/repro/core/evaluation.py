"""Configuration evaluation: the metrics of Section 6.1.2.

* **Revenue coverage** — achieved revenue divided by the aggregate
  willingness to pay in ``W`` (the revenue upper bound).
* **Revenue gain** — fractional gain over the Components baseline.

For deterministic (step) adoption the expected revenue is exact.  For
stochastic adoption the paper "averages revenues across ten runs"; the
:func:`evaluate` helper supports both the closed-form expectation and the
Monte-Carlo average of realized revenues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bundle import Bundle
from repro.core.choice import evaluate_forest, sample_forest
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.revenue import RevenueEngine
from repro.errors import ValidationError
from repro.utils.rng import spawn_rngs

#: Paper convention (Section 6.2): "we average revenues across ten runs".
DEFAULT_STOCHASTIC_RUNS = 10


@dataclass(frozen=True)
class EvaluationReport:
    """Revenue metrics for one configuration under one engine."""

    expected_revenue: float
    coverage: float
    realized_revenues: tuple[float, ...]
    buyers_per_offer: dict[Bundle, float]

    @property
    def realized_mean(self) -> float:
        if not self.realized_revenues:
            return self.expected_revenue
        return float(np.mean(self.realized_revenues))

    @property
    def realized_std(self) -> float:
        if len(self.realized_revenues) < 2:
            return 0.0
        return float(np.std(self.realized_revenues, ddof=1))


def revenue_gain(revenue: float, components_revenue: float) -> float:
    """Fractional gain over Components (Section 6.1.2)."""
    if components_revenue <= 0:
        raise ValidationError("components revenue must be positive to compute gain")
    return (revenue - components_revenue) / components_revenue


def expected_pure_revenue(config: PureConfiguration, engine: RevenueEngine) -> tuple[float, dict[Bundle, float]]:
    """Exact expected revenue of a pure configuration (disjoint offers)."""
    total, buyers, _payments = _pure_pass(config, engine, with_payments=False)
    return total, buyers


def expected_pure_outcome(
    config: PureConfiguration, engine: RevenueEngine
) -> tuple[float, dict[Bundle, float], np.ndarray]:
    """:func:`expected_pure_revenue` plus per-user expected payments.

    Offers are disjoint, so each consumer's expected payment is the sum of
    ``price · P(adopt)`` over the offers.  Both functions run the same
    single pass (the payments accumulation never feeds the revenue total,
    so the revenue's float result is identical), which is what keeps the
    serving path (:meth:`repro.api.BundlingSolution.quote`) bit-exact with
    the fitted expected revenue.
    """
    total, buyers, payments = _pure_pass(config, engine, with_payments=True)
    assert payments is not None
    return total, buyers, payments


def _pure_pass(
    config: PureConfiguration, engine: RevenueEngine, with_payments: bool
) -> tuple[float, dict[Bundle, float], np.ndarray | None]:
    """One pass over the disjoint offers; payments accumulated on demand."""
    total = 0.0
    buyers: dict[Bundle, float] = {}
    payments = np.zeros(engine.n_users) if with_payments else None
    for offer in config.offers:
        if offer.price <= 0:
            buyers[offer.bundle] = 0.0
            continue
        probs = engine.adoption.probability(engine.bundle_wtp(offer.bundle), offer.price)
        count = float(probs.sum())
        buyers[offer.bundle] = count
        total += offer.price * count
        if payments is not None:
            payments += offer.price * probs
    return total, buyers, payments


def sample_pure_revenue(config: PureConfiguration, engine: RevenueEngine, rng) -> float:
    """One realized revenue draw (independent Bernoulli adoptions)."""
    total = 0.0
    for offer in config.offers:
        if offer.price <= 0:
            continue
        adopted = engine.adoption.sample(engine.bundle_wtp(offer.bundle), offer.price, rng)
        total += offer.price * float(np.count_nonzero(adopted))
    return total


def expected_mixed_revenue(
    config: MixedConfiguration, engine: RevenueEngine, antichain_limit: int = 4096
) -> tuple[float, dict[Bundle, float]]:
    """Expected revenue of a mixed configuration via the choice model.

    Exact for both deterministic (forest DP) and stochastic (closed-form
    antichain MNL via the subtree-state recursion) adoption; see
    :mod:`repro.core.choice`.  ``antichain_limit`` is retained for
    signature compatibility and unused.
    """
    outcome = evaluate_forest(config.forest(), engine.bundle_wtp, engine.adoption)
    return outcome.revenue, outcome.buyers_per_offer


def sample_mixed_revenue(
    config: MixedConfiguration, engine: RevenueEngine, rng, antichain_limit: int = 4096
) -> float:
    """One realized revenue draw (exact top-down multinomial-logit sampling)."""
    outcome = sample_forest(config.forest(), engine.bundle_wtp, engine.adoption, rng)
    return outcome.revenue


def evaluate(
    config: PureConfiguration | MixedConfiguration,
    engine: RevenueEngine,
    n_runs: int | None = None,
    seed=None,
    antichain_limit: int = 4096,
) -> EvaluationReport:
    """Full evaluation of a configuration.

    ``n_runs`` controls the Monte-Carlo averaging for stochastic adoption
    (defaults to the paper's ten runs; forced to 0 under deterministic
    adoption, where the expectation is exact and sampling is pointless).
    """
    if isinstance(config, PureConfiguration):
        expected, buyers = expected_pure_revenue(config, engine)
        sampler = lambda r: sample_pure_revenue(config, engine, r)  # noqa: E731
    elif isinstance(config, MixedConfiguration):
        expected, buyers = expected_mixed_revenue(config, engine, antichain_limit)
        sampler = lambda r: sample_mixed_revenue(config, engine, r, antichain_limit)  # noqa: E731
    else:
        raise ValidationError(f"cannot evaluate object of type {type(config).__name__}")

    if engine.adoption.is_deterministic:
        runs: tuple[float, ...] = ()
    else:
        count = DEFAULT_STOCHASTIC_RUNS if n_runs is None else int(n_runs)
        runs = tuple(sampler(rng) for rng in spawn_rngs(seed, count))
    return EvaluationReport(
        expected_revenue=expected,
        coverage=engine.coverage(expected),
        realized_revenues=runs,
        buyers_per_offer=buyers,
    )

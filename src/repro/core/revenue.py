"""The revenue engine: Equations 1, 2 and 5 behind one object.

:class:`RevenueEngine` binds together the WTP matrix, the bundling
coefficient θ, the adoption model, and the price grid, and exposes every
revenue computation the configuration algorithms need:

* pricing a single bundle offered on its own (pure bundling);
* batched pricing of many candidate bundles at once (the O(M·N²) pair scans
  of Algorithms 1 and 2, vectorized);
* mixed-merge pricing under the incremental policy of Section 4.2;
* the co-support pruning rule of Section 5.3.1 ("only consider pairs of
  items for which at least one customer has non-zero willingness to pay for
  both");
* operation counters used by the complexity experiments (Section 6.3).

Memory discipline
-----------------
The pair scans are *streamed* through :mod:`repro.core.kernels`: candidate
columns are materialized at most ``chunk_elements`` values at a time, so a
scan over ~N²/2 candidates runs in O(chunk) rather than O(M·N²) memory.  A
merged candidate's raw WTP is assembled incrementally as ``raw(b1) +
raw(b2)`` from its cached parents instead of re-gathering item columns, and
the raw-vector cache itself is LRU-bounded so arbitrarily long greedy runs
stay memory-flat.  Co-support pruning runs on bit-packed masks
(:mod:`repro.core.support`) — 8× smaller than boolean stacks, with
word-AND intersection tests.

Results of single-bundle pricing are cached by bundle, since both heuristics
revisit surviving bundles across iterations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.adoption import AdoptionModel, StepAdoption
from repro.core.kernels import (
    DEFAULT_CHUNK_ELEMENTS,
    LRUArrayCache,
    check_chunk_elements,
    check_executor,
    check_n_workers,
    stream_mixed_merges,
    stream_pure_prices,
)
from repro.core.retry import (
    DegradedExecutionWarning,
    RetryPolicy,
    check_retry_policy,
)
from repro.core.shm import SharedMixedFill, SharedPairFill, SharedWTPStore
from repro.core.pricing import (
    MixedMerge,
    PriceGrid,
    PricedBundle,
    check_mixed_kernel,
    price_pure,
    resolve_mixed_kernel,
)
from repro.core.support import (
    bundle_support_bits,
    co_supported_pairs_packed,
    item_support_bits,
)
from repro.core.bundle import Bundle
from repro.core.wtp import WTPMatrix, _resolve_dtype
from repro.errors import PricingError, SharedMemoryError, ValidationError
from repro.utils.validation import check_fraction


def default_raw_cache_entries(n_items: int) -> int:
    """Default LRU capacity for per-bundle raw-WTP vectors.

    Enough for every singleton plus a full set of live bundles, keeping
    long runs memory-flat.  Shared with :meth:`repro.api.EngineConfig.
    from_engine`, which must recognise an engine left on this default.
    """
    return max(2 * n_items, 128)


#: Default relative drift at which a warm refit gives up and re-optimizes
#: from scratch: the larger of the expected-revenue delta and the
#: bundle-vs-separate-ratio delta of the warm menu, relative to the
#: solution it warm-started from (see ``BundlingSolver.refit``).
DEFAULT_DRIFT_THRESHOLD = 0.05


def check_drift_threshold(drift_threshold: float) -> float:
    """Validate a refit drift threshold (finite, non-negative)."""
    try:
        value = float(drift_threshold)
    except (TypeError, ValueError):
        raise ValidationError(
            f"drift_threshold must be a non-negative float, got {drift_threshold!r}"
        ) from None
    if not np.isfinite(value) or value < 0:
        raise ValidationError(
            f"drift_threshold must be a non-negative float, got {drift_threshold!r}"
        )
    return value


@dataclass
class EngineStats:
    """Operation counters for the efficiency experiments."""

    pure_pricings: int = 0
    mixed_pricings: int = 0
    batch_calls: int = 0
    deltas_applied: int = 0

    def reset(self) -> None:
        self.pure_pricings = 0
        self.mixed_pricings = 0
        self.batch_calls = 0
        self.deltas_applied = 0


@dataclass(frozen=True)
class Objective:
    """Generalized seller objective ``α·profit + (1−α)·surplus`` (Section 1).

    The paper's experiments use α=1 with zero variable cost, i.e. revenue
    maximization; this extension supports the full utility function.
    ``variable_costs`` holds one per-unit cost per item (bundle cost is the
    sum over its items).
    """

    profit_weight: float = 1.0
    variable_costs: np.ndarray | None = None

    def __post_init__(self) -> None:
        check_fraction(self.profit_weight, "profit_weight")
        if self.variable_costs is not None:
            costs = np.asarray(self.variable_costs, dtype=np.float64)
            if costs.ndim != 1 or np.any(costs < 0) or not np.all(np.isfinite(costs)):
                raise ValidationError("variable_costs must be a 1-D non-negative array")
            object.__setattr__(self, "variable_costs", costs)

    def bundle_cost(self, bundle: Bundle) -> float:
        if self.variable_costs is None:
            return 0.0
        return float(self.variable_costs[list(bundle.items)].sum())

    @property
    def is_pure_revenue(self) -> bool:
        return self.profit_weight == 1.0 and self.variable_costs is None


class RevenueEngine:
    """Prices bundles and measures revenue against one WTP matrix.

    Parameters
    ----------
    wtp:
        The M×N willingness-to-pay matrix (or anything
        :class:`~repro.core.wtp.WTPMatrix` accepts, including SciPy sparse).
    theta:
        Bundling coefficient θ of Equation 1 (default 0 — independent items,
        the conventional setting; Table 3).
    adoption:
        Adoption model (default: the deterministic step function, the exact
        limit of the paper's γ=1e6 setting).
    grid:
        Price grid (default: 100 equi-spaced levels; Section 4.2).
    objective:
        Optional generalized objective; ``None`` means revenue maximization.
    chunk_elements:
        Element budget for the streaming pair-scan buffers; peak working
        memory of a batch pricing call is a small constant multiple of
        ``8 · chunk_elements`` bytes regardless of how many candidates are
        scanned.  ``None`` disables chunking (the original unbounded
        behaviour — O(M·N²) at scale).
    precision:
        WTP storage dtype override: ``"float64"`` (default) or
        ``"float32"`` (half the matrix memory; pricing differs only by
        float32 rounding).
    storage:
        WTP storage override: ``"dense"`` or ``"sparse"`` (SciPy CSC;
        column sums cost density-proportional work).
    raw_cache_entries:
        Capacity of the LRU cache of per-bundle raw-WTP vectors (each O(M)).
        Default ``max(2·n_items, 128)`` — enough for every singleton plus a
        full set of live bundles, keeping long runs memory-flat.
    n_workers:
        Worker threads for the streaming pair scans (default 1, serial).
        Chunks fan out over a thread pool with one private fill buffer per
        worker; numpy releases the GIL inside the pricing kernels, so on
        multi-core hardware the scans scale with cores while results stay
        bit-identical to the serial scan.
    executor:
        Execution backend for the streamed scans: ``"thread"`` (default —
        the GIL-sharing pool above), ``"process"`` (worker *processes*
        attached to shared-memory scan inputs, for real multi-core scaling
        of the O(M·N²) pair scans), or ``"serial"`` (force in-order
        execution regardless of ``n_workers``).  The process executor
        engages on the pair scans (:meth:`pure_merge_gains` /
        :meth:`mixed_merge_gains`) when ``n_workers > 1``: parent raw-WTP
        rows — and, for mixed scans, the subtree-state arrays — are staged
        into :class:`~repro.core.shm.SharedWTPStore` blocks that workers
        attach by name, so nothing O(M) is ever pickled.  Arbitrary-bundle
        batch pricing (:meth:`price_bundles`, O(N) work per call) stays on
        the thread path.  All executors are bit-identical for every
        chunk/worker combination.
    state_dtype:
        Storage dtype for mixed-strategy subtree states (``"float64"``
        default, or ``"float32"`` to halve the O(N·M) resident state so
        mixed runs fit at 1M+ users; kernels widen on the fly, so pricing
        differs only by float32 rounding of the base choice state).
    mixed_kernel:
        Kernel for the streamed mixed-merge scans: ``"band"`` (the O(T'·M)
        Guiltinan-band level scan), ``"sorted"`` (the O(M log M + T)
        margin-sorted prefix-sum kernel; deterministic adoption only), or
        ``"auto"`` (default — sorted when the adoption model is
        deterministic, band otherwise).  The two kernels agree to float
        accumulation order (~1e-9 relative on gains; identical prices and
        upgrade counts).
    retry:
        :class:`~repro.core.retry.RetryPolicy` (or its dict payload, or
        ``None`` for the defaults) governing the streamed scans' resilience:
        bounded pool-rebuild retries with exponential backoff, an optional
        per-scan wall-clock timeout, and the ``process → thread → serial``
        degradation ladder.  Shared-memory staging failures (``/dev/shm``
        full) likewise degrade the scan to the thread path instead of
        aborting the fit.  Every retry and fallback path is bit-identical
        to the serial scan — the chunk schedule and arithmetic never depend
        on the executor.
    drift_threshold:
        Relative revenue drift at which a warm ``refit`` falls back to a
        cold fit (see :meth:`repro.api.BundlingSolver.refit`).  Carried on
        the engine so :meth:`repro.api.EngineConfig.from_engine` captures
        it like every other config field; :meth:`apply_delta` itself never
        consults it.
    """

    def __init__(
        self,
        wtp,
        theta: float = 0.0,
        adoption: AdoptionModel | None = None,
        grid: PriceGrid | None = None,
        objective: Objective | None = None,
        chunk_elements: int | None = DEFAULT_CHUNK_ELEMENTS,
        precision: str | None = None,
        storage: str | None = None,
        raw_cache_entries: int | None = None,
        n_workers: int = 1,
        state_dtype: str | None = None,
        mixed_kernel: str = "auto",
        executor: str = "thread",
        retry: RetryPolicy | dict | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> None:
        if not isinstance(wtp, WTPMatrix):
            wtp = WTPMatrix(wtp)
        if precision is not None or storage is not None:
            wtp = wtp.with_backend(storage=storage, dtype=precision)
        if theta <= -1.0:
            raise ValidationError(f"theta must be > -1, got {theta}")
        self.wtp = wtp
        self.theta = float(theta)
        self.adoption = adoption or StepAdoption()
        self.grid = grid or PriceGrid()
        self.objective = objective
        self.chunk_elements = check_chunk_elements(chunk_elements)
        self.n_workers = check_n_workers(n_workers)
        self.executor = check_executor(executor)
        self.retry = check_retry_policy(retry)
        self.state_dtype = np.dtype(_resolve_dtype(state_dtype))
        self.mixed_kernel = check_mixed_kernel(mixed_kernel)
        self.drift_threshold = check_drift_threshold(drift_threshold)
        # Resolve "auto" eagerly: an explicit "sorted" request the engine
        # can never honour — stochastic adoption, or a non-linspace grid
        # (whose mixed path runs the scalar reference loop) — should fail
        # at construction, not mid-scan or silently.
        resolve_mixed_kernel(self.mixed_kernel, self.adoption)
        if self.mixed_kernel == "sorted" and self.grid.mode != "linspace":
            raise PricingError(
                "the sorted mixed kernel requires a linspace grid; "
                f"this engine's grid mode is {self.grid.mode!r}"
            )
        self.stats = EngineStats()
        self._price_cache: dict[Bundle, PricedBundle] = {}
        if raw_cache_entries is None:
            raw_cache_entries = default_raw_cache_entries(wtp.n_items)
        self._raw_cache = LRUArrayCache(raw_cache_entries)
        self._item_bits: np.ndarray | None = None

    # ------------------------------------------------------------ dimensions
    @property
    def n_users(self) -> int:
        return self.wtp.n_users

    @property
    def n_items(self) -> int:
        return self.wtp.n_items

    @property
    def total_wtp(self) -> float:
        """Denominator of the revenue-coverage metric."""
        return self.wtp.total

    def coverage(self, revenue: float) -> float:
        """Revenue coverage = revenue / total willingness to pay."""
        total = self.total_wtp
        if total <= 0:
            return 0.0
        return revenue / total

    # ------------------------------------------------------------------- WTP
    def _scale(self, size: int) -> float:
        """Equation 1's interaction factor; singletons are unscaled."""
        return 1.0 + self.theta if size >= 2 else 1.0

    def raw_wtp(self, bundle: Bundle) -> np.ndarray:
        """Σ_{i∈b} w_{u,i} without the θ factor (LRU-cached)."""
        cached = self._raw_cache.get(bundle)
        if cached is not None:
            return cached
        raw = self.wtp.raw_sum(bundle.items)
        self._raw_cache.put(bundle, raw)
        return raw

    def bundle_wtp(self, bundle: Bundle) -> np.ndarray:
        """Per-user willingness to pay for *bundle* (Equation 1)."""
        return self.raw_wtp(bundle) * self._scale(bundle.size)

    def drop_cached(self, bundles: Iterable[Bundle]) -> None:
        """Release cache entries for bundles no longer under consideration."""
        for bundle in bundles:
            self._raw_cache.pop(bundle, None)
            self._price_cache.pop(bundle, None)

    # ------------------------------------------------------- population churn
    def apply_delta(self, delta) -> None:
        """Advance the engine to the post-delta population in place.

        Swaps in the new WTP matrix and invalidates exactly the caches the
        population touches.  Optimal prices are population-dependent (any
        user can move a bundle's grid top), so the price cache is cleared;
        the packed item-support words are rebuilt lazily; the raw-WTP LRU
        entries are *patched* rather than dropped — a raw vector is a
        per-user sum, so a delta is a row delete/append, and the patched
        entry is bit-identical to recomputing it on the merged population.
        Derived subtree states (:meth:`offer_state`,
        :meth:`merged_mixed_state`) are built from these caches on demand
        and need no separate invalidation.
        """
        from repro.core.delta import PopulationDelta

        if not isinstance(delta, PopulationDelta):
            raise ValidationError(
                f"apply_delta expects a PopulationDelta, got {type(delta).__name__}"
            )
        delta.check(self.n_users, self.n_items)
        added = delta.added_matrix(self.wtp)
        new_wtp = self.wtp.apply_delta(
            delta.removed, delta.added if delta.n_added else None
        )
        removed = np.asarray(delta.removed, dtype=np.intp)

        def patch(bundle, raw):
            vector = raw
            if removed.size:
                vector = np.delete(vector, removed)
            if added is not None:
                vector = np.concatenate([vector, added.raw_sum(bundle.items)])
            return vector

        self._raw_cache.remap(patch)
        self.wtp = new_wtp
        self._price_cache.clear()
        self._item_bits = None
        self.stats.deltas_applied += 1
        obs.counter_inc(
            "repro_engine_deltas_total",
            help="Population deltas applied to a revenue engine.",
        )

    # ---------------------------------------------------------- pure pricing
    def price_bundle(self, bundle: Bundle) -> PricedBundle:
        """Revenue-maximizing standalone price for *bundle* (cached)."""
        cached = self._price_cache.get(bundle)
        if cached is not None:
            return cached
        self.stats.pure_pricings += 1
        if self.objective is not None and not self.objective.is_pure_revenue:
            priced = self._price_with_objective(bundle)
        else:
            priced = price_pure(self.bundle_wtp(bundle), self.adoption, self.grid, bundle=bundle)
        self._price_cache[bundle] = priced
        return priced

    def _scan_executor(self) -> str:
        """Executor for the pair scans; ``"process"`` needs >1 worker to engage."""
        if self.executor == "process" and self.n_workers <= 1:
            return "serial"
        return self.executor

    def _fallback_executor(self) -> str:
        """Executor for scans whose fill cannot be pickled (closure fills)."""
        return "serial" if self.executor == "serial" else "thread"

    def _degrade_staging(self, scan: str, error: BaseException) -> None:
        """Shared-memory staging failed: warn and fall to the thread path.

        Raised *before* any pricing runs (allocation/copy-in happens up
        front), so the closure-fill re-scan prices every candidate afresh —
        bit-identical to what the process scan would have produced.  With
        degradation disabled the error propagates instead.
        """
        if not self.retry.degrade:
            raise error
        warnings.warn(
            DegradedExecutionWarning(scan, "process", "thread", error),
            stacklevel=3,
        )

    def _price_streamed(
        self, missing: Sequence[Bundle], fill, executor: str | None = None
    ) -> None:
        """Price *missing* bundles through the streaming kernel and cache them."""
        prices, revenues, buyers = stream_pure_prices(
            fill,
            len(missing),
            self.n_users,
            self.adoption,
            self.grid,
            self.chunk_elements,
            n_workers=self.n_workers,
            executor=executor or self._fallback_executor(),
            retry=self.retry,
        )
        self.stats.pure_pricings += len(missing)
        self.stats.batch_calls += 1
        for j, bundle in enumerate(missing):
            self._price_cache[bundle] = PricedBundle(
                bundle, float(prices[j]), float(revenues[j]), float(buyers[j])
            )

    def price_bundles(self, bundles: Sequence[Bundle]) -> list[PricedBundle]:
        """Batch :meth:`price_bundle`; streams uncached bundles in chunks."""
        missing = [b for b in bundles if b not in self._price_cache]
        if missing:
            if self.objective is not None and not self.objective.is_pure_revenue:
                for bundle in missing:
                    self.price_bundle(bundle)
            else:

                def fill(block: np.ndarray, start: int, stop: int) -> None:
                    for offset, bundle in enumerate(missing[start:stop]):
                        block[:, offset] = self.bundle_wtp(bundle)

                self._price_streamed(missing, fill)
        return [self._price_cache[b] for b in bundles]

    def price_components(self) -> list[PricedBundle]:
        """Price every item individually — the Components baseline."""
        return self.price_bundles([Bundle.singleton(i) for i in range(self.n_items)])

    def pure_merge_gains(
        self, priced: Sequence[PricedBundle], pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, list[PricedBundle]]:
        """Gain ``r(b1∪b2) − r(b1) − r(b2)`` for each candidate pair.

        Candidate columns are built incrementally — ``raw(b1) + raw(b2)``
        from the cached parent vectors, never a per-candidate gather — and
        streamed through the chunked pricing kernel, so the scan's working
        memory is bounded by ``chunk_elements`` however many pairs it
        covers.  Returns the gains and the priced merged bundles (which are
        also cached, so applying a selected merge costs nothing extra).
        """
        if not pairs:
            return np.empty(0), []
        merged_bundles = [priced[i].bundle | priced[j].bundle for i, j in pairs]
        if self.objective is not None and not self.objective.is_pure_revenue:
            merged_priced = self.price_bundles(merged_bundles)
        else:
            missing: list[Bundle] = []
            missing_pairs: list[tuple[int, int]] = []
            seen: set[Bundle] = set()
            for k, bundle in enumerate(merged_bundles):
                if bundle in self._price_cache or bundle in seen:
                    continue
                seen.add(bundle)
                missing.append(bundle)
                missing_pairs.append(pairs[k])
            if missing:
                use_shared = self._scan_executor() == "process"
                if use_shared:
                    try:
                        self._price_merges_shared(priced, missing, missing_pairs)
                    except SharedMemoryError as error:
                        self._degrade_staging("pure-staging", error)
                        use_shared = False
                if not use_shared:

                    def fill(block: np.ndarray, start: int, stop: int) -> None:
                        for offset in range(stop - start):
                            i, j = missing_pairs[start + offset]
                            column = block[:, offset]
                            np.add(
                                self.raw_wtp(priced[i].bundle),
                                self.raw_wtp(priced[j].bundle),
                                out=column,
                            )
                            scale = self._scale(missing[start + offset].size)
                            if scale != 1.0:
                                column *= scale

                    self._price_streamed(missing, fill)
            merged_priced = [self._price_cache[b] for b in merged_bundles]
        gains = np.array(
            [
                merged_priced[k].revenue - priced[i].revenue - priced[j].revenue
                for k, (i, j) in enumerate(pairs)
            ]
        )
        return gains, merged_priced

    @staticmethod
    def _remap_pairs(
        pairs: Sequence[tuple[int, int]],
    ) -> tuple[list[int], np.ndarray]:
        """Parent indices referenced by *pairs*, plus pairs remapped onto them.

        The shared store stages one row per *referenced* parent, not one
        per live bundle, so a pruned scan never copies rows it will not
        read.  Returns ``(used, remapped)`` with ``used`` sorted and
        ``remapped[k] == (row_of(i), row_of(j))`` for ``pairs[k] = (i, j)``.
        """
        used = sorted({index for pair in pairs for index in pair})
        row_of = {index: row for row, index in enumerate(used)}
        remapped = np.array(
            [[row_of[i], row_of[j]] for i, j in pairs], dtype=np.intp
        )
        return used, remapped

    def _price_merges_shared(
        self,
        priced: Sequence[PricedBundle],
        missing: Sequence[Bundle],
        missing_pairs: Sequence[tuple[int, int]],
    ) -> None:
        """Process-executor pure merge scan: parent raw rows in shared memory.

        Stages the referenced parents' raw-WTP vectors (already resident in
        the LRU cache) into one shared block and streams the scan with the
        picklable :class:`SharedPairFill` — identical arithmetic to the
        in-process closure, so results are bit-identical to serial.  The
        store unlinks every block on exit, worker crash included.
        """
        used, remapped = self._remap_pairs(missing_pairs)
        with SharedWTPStore() as store:
            raw = store.put_rows(
                "raw", [self.raw_wtp(priced[index].bundle) for index in used]
            )
            # Merged bundles always have >= 2 items, so Equation 1's scale
            # is the constant (1 + theta) across the scan.
            fill = SharedPairFill(raw, remapped, self._scale(2))
            self._price_streamed(missing, fill, executor="process")

    # --------------------------------------------------------- mixed pricing
    def offer_state(self, offer: PricedBundle) -> "SubtreeState":
        """Per-consumer choice state of a standalone offer (no sub-offers).

        Stored in ``state_dtype`` (the computation itself runs in float64).
        """
        from repro.core.choice import singleton_state

        state = singleton_state(self.bundle_wtp(offer.bundle), offer.price, self.adoption)
        return state.astype(self.state_dtype)

    def mixed_merge_gains(
        self,
        priced: Sequence[PricedBundle],
        states: Sequence["SubtreeState"],
        pairs: Sequence[tuple[int, int]],
    ) -> list[MixedMerge]:
        """Incremental mixed pricing for each candidate pair (streamed).

        For pair (b1, b2) the merged bundle is priced inside the Guiltinan
        interval ``(max(p1, p2), p1 + p2)`` and its *additional* expected
        revenue over the two subtrees' current offers is returned
        (Section 4.2's upgrade semantics, exact for arbitrarily nested
        offers via the subtree-state recursion).  Per-pair columns are
        assembled one chunk at a time, never the full (M, P) stack.
        """
        if not pairs:
            return []
        self.stats.mixed_pricings += len(pairs)
        self.stats.batch_calls += 1
        if self.grid.mode != "linspace":
            from repro.core.pricing import price_mixed_bundle

            results = []
            for i, j in pairs:
                first, second = priced[i], priced[j]
                union = first.bundle | second.bundle
                raw = self.raw_wtp(first.bundle) + self.raw_wtp(second.bundle)
                base = states[i] + states[j]
                results.append(
                    price_mixed_bundle(
                        raw * self._scale(union.size),
                        base.score,
                        base.pay,
                        max(first.price, second.price),
                        first.price + second.price,
                        self.adoption,
                        self.grid,
                        bundle=union,
                    )
                )
            return results

        merged_bundles = [priced[i].bundle | priced[j].bundle for i, j in pairs]
        scan: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        if self._scan_executor() == "process":
            try:
                scan = self._mixed_merges_shared(priced, states, pairs)
            except SharedMemoryError as error:
                self._degrade_staging("mixed-staging", error)
        if scan is None:

            def fill_pair(
                k: int, wtp_col: np.ndarray, score_col: np.ndarray, pay_col: np.ndarray
            ) -> tuple[float, float]:
                i, j = pairs[k]
                first, second = priced[i], priced[j]
                np.add(
                    self.raw_wtp(first.bundle),
                    self.raw_wtp(second.bundle),
                    out=wtp_col,
                )
                scale = self._scale(merged_bundles[k].size)
                if scale != 1.0:
                    wtp_col *= scale
                # dtype= forces the float64 loop, so float32-stored states
                # are widened *before* the addition (np.add would otherwise
                # sum in float32 and only cast the result).
                np.add(
                    states[i].score, states[j].score, out=score_col, dtype=np.float64
                )
                np.add(states[i].pay, states[j].pay, out=pay_col, dtype=np.float64)
                return max(first.price, second.price), first.price + second.price

            scan = stream_mixed_merges(
                fill_pair,
                len(pairs),
                self.n_users,
                self.adoption,
                self.grid,
                self.chunk_elements,
                n_workers=self.n_workers,
                mixed_kernel=self.mixed_kernel,
                executor=self._fallback_executor(),
                retry=self.retry,
            )
        prices, gains, upgraded, feasible = scan
        return [
            MixedMerge(
                bundle=merged_bundles[k],
                price=float(prices[k]),
                gain=float(gains[k]) if feasible[k] else 0.0,
                upgraded=float(upgraded[k]),
                feasible=bool(feasible[k]),
            )
            for k in range(len(pairs))
        ]

    def _mixed_merges_shared(
        self,
        priced: Sequence[PricedBundle],
        states: Sequence["SubtreeState"],
        pairs: Sequence[tuple[int, int]],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Process-executor mixed merge scan over shared parent rows.

        Stages three blocks — raw WTP (float64), and the subtree-state
        score/pay arrays in their *stored* dtype, so the worker-side
        float64 widening reproduces the lean-state arithmetic bit for bit —
        plus the O(parents) price vector pickled with the fill itself.
        """
        used, remapped = self._remap_pairs(pairs)
        parent_prices = np.array(
            [priced[index].price for index in used], dtype=np.float64
        )
        with SharedWTPStore() as store:
            raw = store.put_rows(
                "raw", [self.raw_wtp(priced[index].bundle) for index in used]
            )
            score = store.put_rows("score", [states[index].score for index in used])
            pay = store.put_rows("pay", [states[index].pay for index in used])
            fill = SharedMixedFill(
                raw, score, pay, remapped, parent_prices, self._scale(2)
            )
            return stream_mixed_merges(
                fill,
                len(pairs),
                self.n_users,
                self.adoption,
                self.grid,
                self.chunk_elements,
                n_workers=self.n_workers,
                mixed_kernel=self.mixed_kernel,
                executor="process",
                retry=self.retry,
            )

    def mixed_merge(
        self,
        first: PricedBundle,
        second: PricedBundle,
        state_first: "SubtreeState | None" = None,
        state_second: "SubtreeState | None" = None,
    ) -> MixedMerge:
        """Single-pair convenience wrapper over :meth:`mixed_merge_gains`.

        Subtree states default to standalone-offer states (correct when the
        two offers have no sub-offers of their own).
        """
        states = [
            state_first if state_first is not None else self.offer_state(first),
            state_second if state_second is not None else self.offer_state(second),
        ]
        return self.mixed_merge_gains([first, second], states, [(0, 1)])[0]

    def merged_mixed_state(
        self,
        merge: MixedMerge,
        base: "SubtreeState",
    ) -> "SubtreeState":
        """Choice state of the subtree created by applying *merge* on *base*."""
        from repro.core.choice import merged_state

        utility = self.adoption.utility(self.bundle_wtp(merge.bundle), merge.price)
        return merged_state(base, utility, merge.price, self.adoption).astype(
            self.state_dtype
        )

    def mixed_bundle_gain(self, bundle: Bundle, components: Sequence[PricedBundle]) -> MixedMerge:
        """Mixed pricing of *bundle* offered alongside arbitrary components.

        The components must partition the bundle's items (checked).  Used
        by the frequent-itemset baseline, whose candidate itemsets are
        offered next to all their singleton components.
        """
        from repro.core.pricing import price_mixed_bundle

        covered: set[int] = set()
        for component in components:
            covered.update(component.bundle.items)
        if covered != set(bundle.items):
            raise ValidationError("components must exactly partition the bundle's items")
        self.stats.mixed_pricings += 1
        base = self.offer_state(components[0])
        for component in components[1:]:
            base = base + self.offer_state(component)
        return price_mixed_bundle(
            self.bundle_wtp(bundle),
            base.score,
            base.pay,
            max(component.price for component in components),
            sum(component.price for component in components),
            self.adoption,
            self.grid,
            bundle=bundle,
        )

    # -------------------------------------------------------------- pruning
    def support_bits(self, bundle: Bundle) -> np.ndarray:
        """Packed (uint8-word) mask of users with positive WTP for *bundle*.

        Exactly the bit-packing of ``raw_wtp(bundle) > 0`` — a sum of
        non-negative values is positive iff one addend is — at 1/8th the
        memory of a boolean mask and none of the O(M) float work.
        """
        if self._item_bits is None:
            self._item_bits = item_support_bits(self.wtp)
        return bundle_support_bits(self._item_bits, bundle.items)

    def co_supported_pairs(self, bundles: Sequence[Bundle]) -> list[tuple[int, int]]:
        """Pairs with at least one consumer valuing both sides positively.

        This is pruning strategy 1 of Section 5.3.1: a consumer who wants
        only one side contributes no extra willingness to pay, so pairs with
        empty co-support can never produce a revenue gain.  Runs on packed
        support words; pair order matches the dense upper-triangle scan.
        """
        if len(bundles) < 2:
            return []
        packed = np.stack([self.support_bits(b) for b in bundles])
        return co_supported_pairs_packed(packed)

    # ------------------------------------------------------------- objective
    def _price_with_objective(self, bundle: Bundle) -> PricedBundle:
        """Scan the grid maximizing ``α·profit + (1−α)·surplus``.

        Only supported for deterministic adoption (the generalized objective
        is an extension; the paper's experiments use pure revenue).
        """
        if not self.adoption.is_deterministic:
            raise ValidationError("the generalized objective requires deterministic adoption")
        objective = self.objective
        assert objective is not None
        wtp = self.bundle_wtp(bundle)
        effective = self.adoption.alpha * wtp + self.adoption.epsilon
        levels = self.grid.candidates(effective)
        if levels.size == 0:
            return PricedBundle(bundle, 0.0, 0.0, 0.0)
        cost = objective.bundle_cost(bundle)
        compare = levels - 1e-9 * (1.0 + np.abs(levels))
        adopter = effective[None, :] >= compare[:, None]  # (T, M)
        buyers = adopter.sum(axis=1)
        revenue = levels * buyers
        profit = (levels - cost) * buyers
        surplus = (adopter * np.maximum(wtp[None, :] - levels[:, None], 0.0)).sum(axis=1)
        value = objective.profit_weight * profit + (1.0 - objective.profit_weight) * surplus
        best = int(np.argmax(value))
        if value[best] <= 0:
            return PricedBundle(bundle, 0.0, 0.0, 0.0)
        return PricedBundle(bundle, float(levels[best]), float(revenue[best]), float(buyers[best]))

    def __repr__(self) -> str:
        return (
            f"RevenueEngine(n_users={self.n_users}, n_items={self.n_items}, "
            f"theta={self.theta}, adoption={self.adoption!r}, grid={self.grid!r})"
        )

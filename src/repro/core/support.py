"""Bit-packed co-support kernels (pruning strategy 1, Section 5.3.1).

"Only consider pairs of items for which at least one customer has non-zero
willingness to pay for both": the pruning rule needs, for every candidate
pair of bundles, whether their per-user support masks intersect.  The dense
formulation — an ``(M, B)`` boolean stack and a float matmul — costs
O(M·B) bytes per scan and O(M) work per greedy merge.

Packing each support mask into ``uint8`` words (the idiom of
:mod:`repro.fim.bitset`, which runs the vertical frequent-itemset miners)
shrinks masks 8× versus boolean arrays — 64× versus the float32 matmul
operands — and turns every intersection test into a word-wise AND:

* :func:`item_support_bits` packs the per-item support of a
  :class:`~repro.core.wtp.WTPMatrix` once (density-proportional work for
  the sparse backend — the matrix is never densified);
* :func:`bundle_support_bits` derives a bundle's mask as the word-OR of
  its items' rows;
* :func:`co_supported_pairs_packed` emits exactly the pair list of the
  dense reference, in the same (row-major, i < j) order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.wtp import WTPMatrix
from repro.errors import ValidationError


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a per-user boolean support mask into ``uint8`` words."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValidationError(f"expected a 1-D support mask, got shape {mask.shape}")
    return np.packbits(mask)


def unpack_mask(bits: np.ndarray, n_users: int) -> np.ndarray:
    """Inverse of :func:`pack_mask`, truncated to *n_users* entries."""
    return np.unpackbits(bits, count=n_users).astype(bool)


def masks_intersect(first: np.ndarray, second: np.ndarray) -> bool:
    """Whether two packed masks share any set bit (one word-AND pass)."""
    return bool(np.any(first & second))


def supported_count(bits: np.ndarray) -> int:
    """Number of supporting users in a packed mask."""
    return int(np.bitwise_count(bits).sum())


def item_support_bits(wtp: WTPMatrix) -> np.ndarray:
    """Packed per-item support, shape ``(n_items, ceil(n_users / 8))``.

    Row ``i`` packs the mask "user has positive WTP for item ``i``".  Built
    column-by-column through :meth:`WTPMatrix.support_mask`, so the sparse
    backend pays only density-proportional work.
    """
    n_words = (wtp.n_users + 7) // 8
    bits = np.empty((wtp.n_items, n_words), dtype=np.uint8)
    for item in range(wtp.n_items):
        bits[item] = np.packbits(wtp.support_mask([item]))
    return bits


def bundle_support_bits(item_bits: np.ndarray, items: Sequence[int]) -> np.ndarray:
    """A bundle's packed support: word-OR of its items' rows.

    Exact for non-negative WTP: a bundle's raw WTP is positive for a user
    iff some member item's WTP is (a sum of non-negative floats is positive
    iff one addend is).
    """
    items = list(items)
    if len(items) == 1:
        return item_bits[items[0]]
    return np.bitwise_or.reduce(item_bits[items], axis=0)


def co_supported_pairs_packed(packed: np.ndarray) -> list[tuple[int, int]]:
    """Index pairs ``(i, j)``, ``i < j``, whose packed masks intersect.

    Matches the dense reference (upper-triangle of the support Gram matrix)
    exactly, including its row-major emission order, while touching
    O(B²·M/8) bytes instead of forming an ``(M, B)`` float operand.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValidationError(
            f"expected packed masks of shape (n_bundles, n_words), got {packed.shape}"
        )
    n_bundles = packed.shape[0]
    pairs: list[tuple[int, int]] = []
    for i in range(n_bundles - 1):
        hits = np.flatnonzero((packed[i + 1 :] & packed[i]).any(axis=1))
        pairs.extend((i, int(i + 1 + j)) for j in hits)
    return pairs

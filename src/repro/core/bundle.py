"""Immutable bundles of items.

A *bundle* (paper, Section 3) is a non-empty set of item indices.  Bundles are
the unit every algorithm manipulates: configurations are collections of
bundles, prices attach to bundles, and willingness to pay is defined per
bundle via Equation 1.

:class:`Bundle` is a thin immutable wrapper around a sorted tuple of item
indices.  It is hashable (usable as a cache key), supports set algebra, and
renders compactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ValidationError


class Bundle:
    """An immutable, non-empty set of item indices.

    Items are arbitrary non-negative integers (column indices into the WTP
    matrix).  Two bundles are equal iff they contain the same items.

    >>> Bundle([2, 0]) == Bundle.of(0, 2)
    True
    >>> (Bundle.of(0) | Bundle.of(1)).items
    (0, 1)
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[int]) -> None:
        unique = sorted(set(items))
        if not unique:
            raise ValidationError("a bundle must contain at least one item")
        for item in unique:
            if isinstance(item, bool) or not isinstance(item, (int,)):
                raise ValidationError(f"bundle items must be ints, got {item!r}")
            if item < 0:
                raise ValidationError(f"bundle items must be >= 0, got {item}")
        self._items: tuple[int, ...] = tuple(int(item) for item in unique)
        self._hash = hash(self._items)

    @classmethod
    def of(cls, *items: int) -> "Bundle":
        """Build a bundle from item arguments: ``Bundle.of(1, 5, 2)``."""
        return cls(items)

    @classmethod
    def singleton(cls, item: int) -> "Bundle":
        """Build a size-1 bundle for *item*."""
        return cls((item,))

    @property
    def items(self) -> tuple[int, ...]:
        """The items, as a sorted tuple."""
        return self._items

    @property
    def size(self) -> int:
        """Number of items in the bundle (``|b|`` in the paper)."""
        return len(self._items)

    def is_singleton(self) -> bool:
        """True for size-1 bundles, which represent individual components."""
        return len(self._items) == 1

    def union(self, other: "Bundle") -> "Bundle":
        """The merged bundle ``self ∪ other``."""
        return Bundle(self._items + other._items)

    def intersects(self, other: "Bundle") -> bool:
        """True if the bundles share at least one item."""
        mine = set(self._items)
        return any(item in mine for item in other._items)

    def issubset(self, other: "Bundle") -> bool:
        """True if every item of *self* belongs to *other*."""
        theirs = set(other._items)
        return all(item in theirs for item in self._items)

    def isdisjoint(self, other: "Bundle") -> bool:
        """True if the bundles share no item."""
        return not self.intersects(other)

    def __or__(self, other: "Bundle") -> "Bundle":
        return self.union(other)

    def __contains__(self, item: int) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bundle):
            return NotImplemented
        return self._items == other._items

    def __lt__(self, other: "Bundle") -> bool:
        # Deterministic ordering (by item tuple) so sorted() over bundles
        # is stable across runs; not a subset relation.
        if not isinstance(other, Bundle):
            return NotImplemented
        return self._items < other._items

    def __repr__(self) -> str:
        inner = ", ".join(str(item) for item in self._items)
        return f"Bundle({{{inner}}})"


def validate_partition(bundles: Iterable[Bundle], n_items: int) -> None:
    """Check Problem 1's structural conditions for a pure configuration.

    The bundles must be pairwise disjoint and their union must be exactly
    ``{0, ..., n_items - 1}``.  Raises :class:`ValidationError` otherwise.
    """
    seen: set[int] = set()
    for bundle in bundles:
        for item in bundle:
            if item in seen:
                raise ValidationError(f"item {item} appears in more than one bundle")
            if item >= n_items:
                raise ValidationError(f"item {item} is out of range for n_items={n_items}")
            seen.add(item)
    if len(seen) != n_items:
        missing = sorted(set(range(n_items)) - seen)
        raise ValidationError(f"items not covered by any bundle: {missing[:10]}")


def validate_laminar(bundles: Iterable[Bundle], n_items: int) -> None:
    """Check Problem 2's structural conditions for a mixed configuration.

    Any two bundles must be either disjoint or nested (a laminar family),
    and the union must cover ``{0, ..., n_items - 1}``.
    """
    bundle_list = list(bundles)
    covered: set[int] = set()
    for bundle in bundle_list:
        for item in bundle:
            if item >= n_items:
                raise ValidationError(f"item {item} is out of range for n_items={n_items}")
            covered.add(item)
    if len(covered) != n_items:
        missing = sorted(set(range(n_items)) - covered)
        raise ValidationError(f"items not covered by any bundle: {missing[:10]}")
    for i, first in enumerate(bundle_list):
        for second in bundle_list[i + 1 :]:
            if first == second:
                raise ValidationError(f"duplicate bundle in configuration: {first}")
            if first.intersects(second) and not (
                first.issubset(second) or second.issubset(first)
            ):
                raise ValidationError(
                    f"bundles {first} and {second} overlap without nesting "
                    "(violates the mixed-bundling laminarity condition)"
                )

"""Weighted-set-packing solvers for pure bundling (Sections 5.2 and 6.4).

These are the comparators of Table 4/5: enumerate *all* candidate bundles
(every non-empty subset of the items — 2^N − 1 of them), compute each
bundle's standalone revenue, then solve the resulting weighted set packing

* exactly — :class:`OptimalWSP`, via the subset DP (guaranteed) or the
  branch-and-bound ILP stand-in; or
* approximately — :class:`GreedyWSP`, the √N-factor greedy of Chandra &
  Halldórsson that repeatedly takes the set with the highest average
  weight per item.

The paper stresses that the enumeration step alone costs O(M·2^N) and
reports it separately from solving; both times land in ``result.extra``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    PURE,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
    check_max_size,
)
from repro.core.bundle import Bundle
from repro.core.configuration import PureConfiguration
from repro.core.pricing import PricedBundle, price_pure_batch
from repro.core.revenue import RevenueEngine
from repro.errors import SolverError, ValidationError
from repro.ilp.branch_and_bound import solve_branch_and_bound, solve_greedy
from repro.ilp.dp import optimal_partition
from repro.ilp.model import SetPackingProblem, mask_to_items
from repro.utils.timer import Timer

#: 2^22 bundle enumerations is ~45 s and ~GBs of pricing work — refuse more.
MAX_ENUM_ITEMS = 22


def enumerate_bundle_revenues(
    engine: RevenueEngine,
    max_size: int | None = None,
    chunk: int = 1024,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standalone revenue of every non-empty item subset.

    Returns ``(revenues, prices, buyers)`` arrays of length ``2^N`` indexed
    by bundle bitmask (index 0 unused).  Bundles larger than *max_size*
    get −inf revenue.  This is the O(M·2^N) enumeration step the paper
    reports separately in Section 6.4.
    """
    n = engine.n_items
    if n > MAX_ENUM_ITEMS:
        raise ValidationError(
            f"subset enumeration supports at most {MAX_ENUM_ITEMS} items, got {n}"
        )
    size = 1 << n
    wtp = engine.wtp
    revenues = np.full(size, -np.inf)
    prices = np.zeros(size)
    buyers = np.zeros(size)
    revenues[0] = 0.0

    masks = np.arange(size, dtype=np.int64)
    popcounts = np.zeros(size, dtype=np.int64)
    for bit in range(n):
        popcounts += (masks >> bit) & 1

    bits = ((masks[:, None] >> np.arange(n)[None, :]) & 1).astype(np.float64)  # (2^N, N)
    for start in range(1, size, chunk):
        stop = min(start + chunk, size)
        block = np.arange(start, stop)
        if max_size is not None:
            block = block[popcounts[start:stop] <= max_size]
            if block.size == 0:
                continue
        # Raw bundle WTP assembled from column-streamed item blocks: each
        # (M, items-chunk) @ (items-chunk, B) partial matmul accumulates
        # into the candidate columns, so the dense matrix is never
        # materialized (one item block covers all N under the default
        # budget, making the accumulation a single matmul as before).
        block_bits = bits[block]  # (B, N)
        columns = np.zeros((wtp.n_users, block.size))
        for c_start, c_stop, vals in wtp.iter_columns(engine.chunk_elements):
            columns += np.asarray(vals, dtype=np.float64) @ block_bits[:, c_start:c_stop].T
        scale = np.where(popcounts[block] >= 2, 1.0 + engine.theta, 1.0)
        columns *= scale[None, :]
        p, r, b = price_pure_batch(columns, engine.adoption, engine.grid)
        revenues[block] = r
        prices[block] = p
        buyers[block] = b
    return revenues, prices, buyers


def _configuration_from_masks(
    engine: RevenueEngine,
    masks: list[int],
    prices: np.ndarray,
    revenues: np.ndarray,
    buyers: np.ndarray,
) -> PureConfiguration:
    """Build a priced configuration from chosen masks + filler singletons."""
    covered = 0
    offers: list[PricedBundle] = []
    for mask in masks:
        covered |= mask
        bundle = Bundle(mask_to_items(mask))
        offers.append(
            PricedBundle(
                bundle,
                float(prices[mask]),
                float(max(revenues[mask], 0.0)),
                float(buyers[mask]),
            )
        )
    for item in range(engine.n_items):
        if not covered & (1 << item):
            mask = 1 << item
            offers.append(
                PricedBundle(
                    Bundle.singleton(item),
                    float(prices[mask]),
                    float(max(revenues[mask], 0.0)),
                    float(buyers[mask]),
                )
            )
    return PureConfiguration(offers, engine.n_items)


class OptimalWSP(BundlingAlgorithm):
    """Exact pure bundling over the full candidate universe.

    ``method="dp"`` uses the Θ(3^N) subset DP (always terminates for the
    supported N); ``method="bnb"`` uses the branch-and-bound ILP stand-in,
    which like the paper's Gurobi run may exhaust resources — it raises
    :class:`~repro.errors.SolverError` at its node limit.
    """

    strategy = PURE

    def __init__(
        self, method: str = "dp", k: int | None = None, node_limit: int = 20_000_000
    ) -> None:
        if method not in ("dp", "bnb"):
            raise ValidationError(f"method must be 'dp' or 'bnb', got {method!r}")
        self.method = method
        self.k = check_max_size(k)
        self.node_limit = node_limit
        self.name = f"optimal_wsp_{method}"

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer:
            with Timer() as enum_timer:
                revenues, prices, buyers = enumerate_bundle_revenues(engine, self.k)
            with Timer() as solve_timer:
                if self.method == "dp":
                    clipped = np.where(np.isfinite(revenues), np.maximum(revenues, 0.0), -np.inf)
                    clipped[0] = 0.0
                    masks, _value = optimal_partition(clipped, engine.n_items, self.k)
                    nodes = 0
                else:
                    masks, nodes = self._solve_bnb(engine.n_items, revenues)
            configuration = _configuration_from_masks(engine, masks, prices, revenues, buyers)
        trace = [
            IterationRecord(1, configuration.expected_revenue, timer.elapsed, len(masks), 0)
        ]
        result = self._finalize(engine, configuration, trace, timer)
        result.extra.update(
            enumeration_time=enum_timer.elapsed,
            solve_time=solve_timer.elapsed,
            nodes_explored=nodes,
        )
        return result

    def _solve_bnb(self, n_items: int, revenues: np.ndarray) -> tuple[list[int], int]:
        candidate_masks = [
            mask
            for mask in range(1, 1 << n_items)
            if np.isfinite(revenues[mask]) and revenues[mask] > 0
        ]
        if not candidate_masks:
            return [], 0
        problem = SetPackingProblem(
            n_items=n_items,
            masks=tuple(candidate_masks),
            weights=tuple(float(revenues[mask]) for mask in candidate_masks),
        )
        try:
            solution = solve_branch_and_bound(problem, node_limit=self.node_limit)
        except SolverError as error:
            raise SolverError(
                f"branch-and-bound did not finish for N={n_items}: {error} "
                "(the paper's ILP likewise failed at N=25)"
            ) from error
        return [candidate_masks[index] for index in solution.chosen], solution.nodes_explored


class GreedyWSP(BundlingAlgorithm):
    """Greedy weighted set packing with the known √N approximation bound."""

    strategy = PURE
    name = "greedy_wsp"

    def __init__(self, k: int | None = None) -> None:
        self.k = check_max_size(k)

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer:
            with Timer() as enum_timer:
                revenues, prices, buyers = enumerate_bundle_revenues(engine, self.k)
            with Timer() as solve_timer:
                candidate_masks = [
                    mask
                    for mask in range(1, 1 << engine.n_items)
                    if np.isfinite(revenues[mask]) and revenues[mask] > 0
                ]
                problem = SetPackingProblem(
                    n_items=engine.n_items,
                    masks=tuple(candidate_masks),
                    weights=tuple(float(revenues[mask]) for mask in candidate_masks),
                )
                solution = solve_greedy(problem)
                masks = [candidate_masks[index] for index in solution.chosen]
            configuration = _configuration_from_masks(engine, masks, prices, revenues, buyers)
        trace = [
            IterationRecord(1, configuration.expected_revenue, timer.elapsed, len(masks), 0)
        ]
        result = self._finalize(engine, configuration, trace, timer)
        result.extra.update(
            enumeration_time=enum_timer.elapsed, solve_time=solve_timer.elapsed
        )
        return result

"""The Components (no-bundling) baselines of Section 6.1.3.

* :class:`Components` — every item sold individually at its revenue-optimal
  price (the stronger baseline the paper compares against).
* :class:`ComponentsListPrice` — every item sold at an externally supplied
  list price ("Amazon's pricing" in Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import PURE, BundlingAlgorithm, BundlingResult
from repro.core.bundle import Bundle
from repro.core.configuration import PureConfiguration
from repro.core.pricing import PricedBundle
from repro.core.revenue import RevenueEngine
from repro.errors import ValidationError
from repro.utils.timer import Timer


class Components(BundlingAlgorithm):
    """Sell every item individually at its optimal price."""

    name = "components"
    strategy = PURE

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer:
            offers = engine.price_components()
            configuration = PureConfiguration(offers, engine.n_items)
        return self._finalize(engine, configuration, [], timer)


class ComponentsListPrice(BundlingAlgorithm):
    """Sell every item individually at a given list price.

    ``prices`` must hold one positive price per item.  The expected revenue
    uses the engine's adoption model at those prices, so Table 2's
    comparison between optimal and list pricing is apples to apples.
    """

    name = "components_list_price"
    strategy = PURE

    def __init__(self, prices) -> None:
        self.prices = np.asarray(prices, dtype=np.float64)
        if self.prices.ndim != 1 or np.any(self.prices <= 0):
            raise ValidationError("prices must be a 1-D positive array")

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        if self.prices.size != engine.n_items:
            raise ValidationError(
                f"got {self.prices.size} prices for {engine.n_items} items"
            )
        with Timer() as timer:
            offers = []
            for item in range(engine.n_items):
                bundle = Bundle.singleton(item)
                price = float(self.prices[item])
                probs = engine.adoption.probability(engine.bundle_wtp(bundle), price)
                buyers = float(probs.sum())
                offers.append(PricedBundle(bundle, price, price * buyers, buyers))
            configuration = PureConfiguration(offers, engine.n_items)
        return self._finalize(engine, configuration, [], timer)

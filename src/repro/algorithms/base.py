"""Common interface for bundle-configuration algorithms.

Every algorithm consumes a :class:`~repro.core.revenue.RevenueEngine` and
produces a :class:`BundlingResult` holding the configuration, its evaluated
expected revenue and coverage, a per-iteration trace (the raw material of
the paper's Figure 6), and wall-clock timing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.evaluation import evaluate, revenue_gain
from repro.core.kernels import check_executor, check_n_workers
from repro.core.pricing import check_mixed_kernel, resolve_mixed_kernel
from repro.core.revenue import RevenueEngine
from repro.errors import PricingError, ValidationError
from repro.utils.timer import Timer

PURE = "pure"
MIXED = "mixed"
STRATEGIES = (PURE, MIXED)


def check_strategy(strategy: str) -> str:
    if strategy not in STRATEGIES:
        raise ValidationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    return strategy


def check_max_size(k: int | None) -> int | None:
    """Validate the k-sized constraint; ``None`` means unbounded (Table 3)."""
    if k is None:
        return None
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValidationError(f"k must be a positive int or None, got {k!r}")
    return k


def check_workers_option(n_workers: int | None) -> int | None:
    """Validate an algorithm-level worker override; ``None`` defers to the engine."""
    if n_workers is None:
        return None
    return check_n_workers(n_workers)


def check_mixed_kernel_option(mixed_kernel: str | None) -> str | None:
    """Validate an algorithm-level kernel override; ``None`` defers to the engine."""
    if mixed_kernel is None:
        return None
    return check_mixed_kernel(mixed_kernel)


def check_executor_option(executor: str | None) -> str | None:
    """Validate an algorithm-level executor override; ``None`` defers to the engine."""
    if executor is None:
        return None
    return check_executor(executor)


@dataclass(frozen=True)
class IterationRecord:
    """One iteration of an iterative algorithm (one point of Figure 6)."""

    index: int
    revenue: float
    elapsed: float
    n_top_bundles: int
    merges: int


@dataclass
class BundlingResult:
    """Outcome of one algorithm run."""

    algorithm: str
    strategy: str
    configuration: PureConfiguration | MixedConfiguration
    expected_revenue: float
    coverage: float
    trace: list[IterationRecord] = field(default_factory=list)
    wall_time: float = 0.0
    extra: dict = field(default_factory=dict)

    def gain_over(self, components_revenue: float) -> float:
        """Revenue gain versus the Components baseline (Section 6.1.2)."""
        return revenue_gain(self.expected_revenue, components_revenue)

    @property
    def n_iterations(self) -> int:
        return len(self.trace)

    def __repr__(self) -> str:
        return (
            f"BundlingResult({self.algorithm}/{self.strategy}, "
            f"revenue={self.expected_revenue:.2f}, coverage={self.coverage:.1%}, "
            f"iterations={self.n_iterations}, time={self.wall_time:.3f}s)"
        )


class BundlingAlgorithm(ABC):
    """Base class: ``fit(engine)`` returns a :class:`BundlingResult`."""

    name: str = "abstract"
    strategy: str = PURE
    #: Optional per-run worker override (``None`` = use the engine's setting).
    n_workers: int | None = None
    #: Optional per-run mixed-kernel override (``None`` = engine's setting).
    mixed_kernel: str | None = None
    #: Optional per-run executor override (``None`` = engine's setting).
    executor: str | None = None
    #: Checkpointing knobs, armed by :meth:`repro.api.BundlingSolver.fit`
    #: (class-level so registry-validated constructor signatures stay
    #: untouched).  ``checkpoint_path=None`` disables checkpointing.
    checkpoint_path = None
    checkpoint_every: int = 1
    #: A :class:`~repro.api.checkpoint.FitCheckpoint` to restart from,
    #: installed by :meth:`repro.api.BundlingSolver.resume`; consumed (and
    #: cleared) by the next ``fit`` call.
    _resume_from = None
    #: ``(EngineConfig, AlgorithmSpec)`` recorded into checkpoints so a
    #: resumed solution carries provenance identical to an uninterrupted one.
    _checkpoint_provenance = None

    @abstractmethod
    def fit(self, engine: RevenueEngine) -> BundlingResult:
        """Run the algorithm against *engine* and return the result."""

    # --------------------------------------------------------- checkpointing
    def _take_resume(self):
        """Pop the pending resume checkpoint (one restart per install)."""
        resume, self._resume_from = self._resume_from, None
        return resume

    def _emit_checkpoint(
        self, engine: RevenueEngine, iteration: int, trace, state: dict, arrays: dict
    ) -> None:
        """Persist an iteration boundary when checkpointing is armed.

        Honours the ``checkpoint_every`` cadence; a no-op without a
        ``checkpoint_path``, so un-checkpointed fits pay nothing.  Under
        :func:`~repro.api.checkpoint.graceful_sigint`, a pending interrupt
        overrides the cadence — the boundary is flushed unconditionally and
        :class:`~repro.errors.FitInterruptedError` stops the fit with a
        resumable artifact on disk.
        """
        if self.checkpoint_path is None:
            return
        from repro.api.checkpoint import interrupt_requested, write_fit_checkpoint

        interrupted = interrupt_requested()
        if not interrupted and iteration % self.checkpoint_every:
            return
        write_fit_checkpoint(self, engine, iteration, trace, state, arrays)
        if interrupted:
            from repro.errors import FitInterruptedError

            raise FitInterruptedError(iteration, self.checkpoint_path)

    @contextmanager
    def _engine_overrides(self, engine: RevenueEngine):
        """Apply per-run engine overrides (workers, kernel, executor) for one fit."""
        previous_workers = engine.n_workers
        previous_kernel = engine.mixed_kernel
        previous_executor = engine.executor
        if self.n_workers is not None:
            engine.n_workers = self.n_workers
        if self.executor is not None:
            engine.executor = self.executor
        if self.mixed_kernel is not None:
            # Fail before any pricing work, mirroring the engine's own
            # construction-time checks (an unusable override would otherwise
            # only surface deep inside the first mixed scan, or be silently
            # ignored by the non-linspace scalar path).
            resolve_mixed_kernel(self.mixed_kernel, engine.adoption)
            if self.mixed_kernel == "sorted" and engine.grid.mode != "linspace":
                raise PricingError(
                    "the sorted mixed kernel requires a linspace grid; "
                    f"this engine's grid mode is {engine.grid.mode!r}"
                )
            engine.mixed_kernel = self.mixed_kernel
        try:
            yield
        finally:
            engine.n_workers = previous_workers
            engine.mixed_kernel = previous_kernel
            engine.executor = previous_executor

    def _finalize(
        self,
        engine: RevenueEngine,
        configuration: PureConfiguration | MixedConfiguration,
        trace: list[IterationRecord],
        timer: Timer,
        extra: dict | None = None,
    ) -> BundlingResult:
        """Evaluate the configuration and assemble the result record."""
        report = evaluate(configuration, engine, n_runs=0)
        return BundlingResult(
            algorithm=self.name,
            strategy=self.strategy,
            configuration=configuration,
            expected_revenue=report.expected_revenue,
            coverage=report.coverage,
            trace=trace,
            wall_time=timer.elapsed,
            extra=extra or {},
        )

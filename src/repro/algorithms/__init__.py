"""Bundle-configuration algorithms: the paper's methods and all baselines."""

from repro.algorithms.base import (
    MIXED,
    PURE,
    STRATEGIES,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
)
from repro.algorithms.components import Components, ComponentsListPrice
from repro.algorithms.freqitemset import DEFAULT_MINSUP, FreqItemsetBundling
from repro.algorithms.greedy import GreedyMerge
from repro.algorithms.matching2 import Optimal2Bundling
from repro.algorithms.matching_iterative import IterativeMatching
from repro.algorithms.registry import (
    BASELINE_METHODS,
    PAPER_METHODS,
    algorithm_names,
    make_algorithm,
)
from repro.algorithms.setpacking import (
    GreedyWSP,
    OptimalWSP,
    enumerate_bundle_revenues,
)

__all__ = [
    "BASELINE_METHODS",
    "BundlingAlgorithm",
    "BundlingResult",
    "Components",
    "ComponentsListPrice",
    "DEFAULT_MINSUP",
    "FreqItemsetBundling",
    "GreedyMerge",
    "GreedyWSP",
    "IterationRecord",
    "IterativeMatching",
    "MIXED",
    "Optimal2Bundling",
    "OptimalWSP",
    "PAPER_METHODS",
    "PURE",
    "STRATEGIES",
    "algorithm_names",
    "enumerate_bundle_revenues",
    "make_algorithm",
]

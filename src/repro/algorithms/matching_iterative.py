"""Algorithm 1: the matching-based heuristic for k-sized bundling.

Each iteration treats the current bundles as vertices, weighs candidate
merges by revenue gain, finds a maximum-weight matching, and collapses
every matched pair into a new bundle.  Iterations continue until no
positive-gain merge is selected or every bundle has reached the size cap.

Two pruning rules from Section 5.3.1 are applied (and can be disabled for
ablation):

* **co-support pruning** (iteration 1): only pairs with at least one
  consumer valuing both sides are candidates;
* **new-vertex pruning** (iterations ≥ 2): only edges touching a bundle
  formed in the previous iteration are introduced — edges the matching
  rejected once are never revisited.

Pure and mixed variants differ only in how a merge is priced (standalone
re-pricing versus the incremental mixed policy) and in that the mixed
variant retains replaced bundles as live offers (the paper's ``X'_I``).
"""

from __future__ import annotations

from repro.algorithms.base import (
    PURE,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
    check_executor_option,
    check_max_size,
    check_mixed_kernel_option,
    check_strategy,
    check_workers_option,
)
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.pricing import PricedBundle
from repro.core.revenue import RevenueEngine
from repro.matching.backends import solve_matching
from repro.utils.timer import Timer


class IterativeMatching(BundlingAlgorithm):
    """The paper's matching-based heuristic (Algorithm 1).

    Parameters
    ----------
    strategy:
        ``"pure"`` or ``"mixed"``.
    k:
        Maximum bundle size (``None`` = unbounded, the Table 3 default).
    backend:
        Matching backend (see :mod:`repro.matching.backends`).
    co_support_pruning, new_vertex_pruning:
        The two pruning rules; on by default, switchable for ablations.
    max_iterations:
        Optional hard iteration cap (useful for revenue-vs-time traces).
    n_workers:
        Worker threads for the streaming pair scans (overrides the
        engine's setting for this run; ``None`` defers to the engine).
    mixed_kernel:
        Mixed-merge kernel backend (``"band"``, ``"sorted"``, or
        ``"auto"``) for this run; ``None`` defers to the engine.
    executor:
        Scan execution backend (``"serial"``, ``"thread"``, or
        ``"process"``) for this run; ``None`` defers to the engine.
    """

    def __init__(
        self,
        strategy: str = PURE,
        k: int | None = None,
        backend: str = "blossom",
        co_support_pruning: bool = True,
        new_vertex_pruning: bool = True,
        max_iterations: int | None = None,
        n_workers: int | None = None,
        mixed_kernel: str | None = None,
        executor: str | None = None,
    ) -> None:
        self.strategy = check_strategy(strategy)
        self.k = check_max_size(k)
        self.backend = backend
        self.co_support_pruning = co_support_pruning
        self.new_vertex_pruning = new_vertex_pruning
        self.max_iterations = max_iterations
        self.n_workers = check_workers_option(n_workers)
        self.mixed_kernel = check_mixed_kernel_option(mixed_kernel)
        self.executor = check_executor_option(executor)
        self.name = f"{self.strategy}_matching"

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer, self._engine_overrides(engine):
            mixed = self.strategy != PURE
            resume = self._take_resume()
            if resume is None:
                current: list[PricedBundle] = list(engine.price_components())
                is_new = [True] * len(current)
                states = (
                    [engine.offer_state(offer) for offer in current] if mixed else []
                )
                retained: list[PricedBundle] = []
                revenue_estimate = sum(offer.revenue for offer in current)
                trace: list[IterationRecord] = []
                iteration = 0
            else:
                (
                    current,
                    is_new,
                    states,
                    retained,
                    revenue_estimate,
                    trace,
                    iteration,
                ) = self._restore(engine, resume)

            while True:
                iteration += 1
                if self.max_iterations is not None and iteration > self.max_iterations:
                    break
                pairs = self._candidate_pairs(engine, current, is_new, iteration)
                if not pairs:
                    break

                gain_of: dict[tuple[int, int], float] = {}
                offer_of: dict[tuple[int, int], PricedBundle] = {}
                edges = []
                if self.strategy == PURE:
                    gains, merged = engine.pure_merge_gains(current, pairs)
                    for index, pair in enumerate(pairs):
                        if gains[index] > 0:
                            gain_of[pair] = float(gains[index])
                            offer_of[pair] = merged[index]
                            edges.append((pair[0], pair[1], gains[index]))
                else:
                    merges = engine.mixed_merge_gains(current, states, pairs)
                    merge_of = dict(zip(pairs, merges))
                    for pair, merge in zip(pairs, merges):
                        if merge.feasible and merge.gain > 0:
                            gain_of[pair] = merge.gain
                            subtree = (
                                current[pair[0]].revenue
                                + current[pair[1]].revenue
                                + merge.gain
                            )
                            offer_of[pair] = PricedBundle(
                                merge.bundle, merge.price, subtree, merge.upgraded
                            )
                            edges.append((pair[0], pair[1], merge.gain))
                if not edges:
                    break

                matched = solve_matching(edges, backend=self.backend)
                total_gain = sum(gain_of[pair] for pair in matched)
                if not matched or total_gain <= 0:
                    break

                taken = {index for pair in matched for index in pair}
                next_current: list[PricedBundle] = []
                next_new: list[bool] = []
                next_states: list = []
                for index, offer in enumerate(current):
                    if index not in taken:
                        next_current.append(offer)
                        next_new.append(False)
                        if mixed:
                            next_states.append(states[index])
                for pair in sorted(matched):
                    next_current.append(offer_of[pair])
                    next_new.append(True)
                    if mixed:
                        retained.append(current[pair[0]])
                        retained.append(current[pair[1]])
                        base = states[pair[0]] + states[pair[1]]
                        next_states.append(engine.merged_mixed_state(merge_of[pair], base))
                # With new-vertex pruning, unselected merge candidates will
                # not be revisited: release their cached pricing to keep
                # memory flat across iterations.  Without it (the ablation
                # path) every surviving pair is re-proposed next iteration,
                # so dropping here would force a full re-pricing per round.
                if self.new_vertex_pruning:
                    engine.drop_cached(
                        offer.bundle
                        for pair, offer in offer_of.items()
                        if pair not in matched
                    )

                revenue_estimate += total_gain
                current = next_current
                is_new = next_new
                if mixed:
                    states = next_states
                trace.append(
                    IterationRecord(
                        index=iteration,
                        revenue=revenue_estimate,
                        elapsed=timer.lap(),
                        n_top_bundles=len(current),
                        merges=len(matched),
                    )
                )
                self._emit_checkpoint(
                    engine,
                    iteration,
                    trace,
                    *self._checkpoint_state(
                        current, is_new, states, retained, revenue_estimate
                    ),
                )

            if self.strategy == PURE:
                configuration = PureConfiguration(current, engine.n_items)
            else:
                configuration = MixedConfiguration(current + retained, engine.n_items)
        return self._finalize(engine, configuration, trace, timer)

    def _candidate_pairs(
        self,
        engine: RevenueEngine,
        current: list[PricedBundle],
        is_new: list[bool],
        iteration: int,
    ) -> list[tuple[int, int]]:
        """Candidate merge pairs after size cap and the two pruning rules."""
        bundles = [offer.bundle for offer in current]
        if self.co_support_pruning:
            pairs = engine.co_supported_pairs(bundles)
        else:
            pairs = [
                (i, j) for i in range(len(bundles)) for j in range(i + 1, len(bundles))
            ]
        if self.k is not None:
            pairs = [
                (i, j) for (i, j) in pairs if bundles[i].size + bundles[j].size <= self.k
            ]
        if self.new_vertex_pruning and iteration > 1:
            pairs = [(i, j) for (i, j) in pairs if is_new[i] or is_new[j]]
        return pairs

    # --------------------------------------------------------- checkpointing
    def _checkpoint_state(
        self, current, is_new, states, retained, revenue_estimate
    ) -> tuple[dict, dict]:
        """The restartable state at an iteration boundary (scalars, arrays).

        Unlike the greedy heap, matching keeps no cross-iteration priority
        state — candidate pairs and the matching are recomputed from the
        vertex list every iteration — so the vertex list (with its is-new
        flags), the mixed subtree states, and the retained offers are the
        whole story.
        """
        from repro.api.checkpoint import _float_fields, _offer_entry

        entries = []
        for index, offer in enumerate(current):
            entry = _offer_entry(offer)
            entry["is_new"] = bool(is_new[index])
            entries.append(entry)
        state = {
            "current": entries,
            "retained": [_offer_entry(offer) for offer in retained],
        }
        state.update(_float_fields(revenue_estimate, "revenue_estimate"))
        arrays = {}
        for index, subtree in enumerate(states):
            arrays[f"score_{index}"] = subtree.score
            arrays[f"pay_{index}"] = subtree.pay
        return state, arrays

    def _restore(self, engine: RevenueEngine, checkpoint):
        """Rebuild the vertex list from a checkpoint (inverse of
        :meth:`_checkpoint_state`)."""
        from repro.api.checkpoint import _read_float, _read_offer
        from repro.core.choice import SubtreeState
        from repro.errors import CheckpointError

        checkpoint.check_algorithm(self)
        checkpoint.check_population(engine.n_users)
        try:
            current = [_read_offer(entry) for entry in checkpoint.state["current"]]
            is_new = [bool(entry["is_new"]) for entry in checkpoint.state["current"]]
            retained = [_read_offer(entry) for entry in checkpoint.state["retained"]]
            revenue_estimate = _read_float(checkpoint.state, "revenue_estimate")
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointError(
                f"malformed matching checkpoint state: {exc!r}"
            ) from exc
        states: list = []
        if self.strategy != PURE:
            for index in range(len(current)):
                try:
                    states.append(
                        SubtreeState(
                            checkpoint.arrays[f"score_{index}"],
                            checkpoint.arrays[f"pay_{index}"],
                        )
                    )
                except KeyError as exc:
                    raise CheckpointError(
                        f"checkpoint is missing the subtree state for vertex {index}"
                    ) from exc
        return (
            current,
            is_new,
            states,
            retained,
            revenue_estimate,
            checkpoint.read_trace(),
            checkpoint.iteration,
        )

"""Name-based algorithm factory.

The experiment harness refers to algorithms by the names the paper uses in
its figures — ``"pure_matching"``, ``"mixed_greedy"``, and so on.  This
registry maps those names to constructors.
"""

from __future__ import annotations

from repro.algorithms.base import MIXED, PURE, BundlingAlgorithm
from repro.algorithms.components import Components
from repro.algorithms.freqitemset import FreqItemsetBundling
from repro.algorithms.greedy import GreedyMerge
from repro.algorithms.matching2 import Optimal2Bundling
from repro.algorithms.matching_iterative import IterativeMatching
from repro.algorithms.setpacking import GreedyWSP, OptimalWSP
from repro.errors import ValidationError

_FACTORIES = {
    "components": lambda **kw: Components(),
    "pure_matching": lambda **kw: IterativeMatching(strategy=PURE, **kw),
    "mixed_matching": lambda **kw: IterativeMatching(strategy=MIXED, **kw),
    "pure_greedy": lambda **kw: GreedyMerge(strategy=PURE, **kw),
    "mixed_greedy": lambda **kw: GreedyMerge(strategy=MIXED, **kw),
    "pure_matching2": lambda **kw: Optimal2Bundling(strategy=PURE, **kw),
    "mixed_matching2": lambda **kw: Optimal2Bundling(strategy=MIXED, **kw),
    "pure_freqitemset": lambda **kw: FreqItemsetBundling(strategy=PURE, **kw),
    "mixed_freqitemset": lambda **kw: FreqItemsetBundling(strategy=MIXED, **kw),
    "optimal_wsp": lambda **kw: OptimalWSP(**kw),
    "greedy_wsp": lambda **kw: GreedyWSP(**kw),
}

#: The four algorithms the paper proposes (Section 6.1.3, "Our Methods").
PAPER_METHODS = ("pure_matching", "pure_greedy", "mixed_matching", "mixed_greedy")

#: The bundling baselines.
BASELINE_METHODS = ("pure_freqitemset", "mixed_freqitemset")


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names."""
    return tuple(sorted(_FACTORIES))


def make_algorithm(name: str, **kwargs) -> BundlingAlgorithm:
    """Instantiate an algorithm by its registry name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown algorithm {name!r}; available: {', '.join(algorithm_names())}"
        )
    return factory(**kwargs)

"""Name-based algorithm factory with strict kwargs validation.

The experiment harness refers to algorithms by the names the paper uses in
its figures — ``"pure_matching"``, ``"mixed_greedy"``, and so on.  This
registry maps those names to (class, preset kwargs) entries and validates
every caller-supplied kwarg against the algorithm's actual constructor
signature: an unknown option raises :class:`ValidationError` instead of
being silently swallowed (historically ``make_algorithm("components",
k=3)`` dropped ``k`` on the floor) or surfacing as an opaque ``TypeError``.

The same validation backs :class:`repro.api.AlgorithmSpec`, so a spec that
constructs is a spec that builds.
"""

from __future__ import annotations

import inspect

from repro.algorithms.base import MIXED, PURE, BundlingAlgorithm
from repro.algorithms.components import Components
from repro.algorithms.freqitemset import FreqItemsetBundling
from repro.algorithms.greedy import GreedyMerge
from repro.algorithms.matching2 import Optimal2Bundling
from repro.algorithms.matching_iterative import IterativeMatching
from repro.algorithms.setpacking import GreedyWSP, OptimalWSP
from repro.errors import ValidationError

#: Registry name -> (algorithm class, preset constructor kwargs).
_REGISTRY: dict[str, tuple[type[BundlingAlgorithm], dict]] = {
    "components": (Components, {}),
    "pure_matching": (IterativeMatching, {"strategy": PURE}),
    "mixed_matching": (IterativeMatching, {"strategy": MIXED}),
    "pure_greedy": (GreedyMerge, {"strategy": PURE}),
    "mixed_greedy": (GreedyMerge, {"strategy": MIXED}),
    "pure_matching2": (Optimal2Bundling, {"strategy": PURE}),
    "mixed_matching2": (Optimal2Bundling, {"strategy": MIXED}),
    "pure_freqitemset": (FreqItemsetBundling, {"strategy": PURE}),
    "mixed_freqitemset": (FreqItemsetBundling, {"strategy": MIXED}),
    "optimal_wsp": (OptimalWSP, {}),
    "greedy_wsp": (GreedyWSP, {}),
}

#: The four algorithms the paper proposes (Section 6.1.3, "Our Methods").
PAPER_METHODS = ("pure_matching", "pure_greedy", "mixed_matching", "mixed_greedy")

#: The bundling baselines.
BASELINE_METHODS = ("pure_freqitemset", "mixed_freqitemset")


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names."""
    return tuple(sorted(_REGISTRY))


def _entry(name: str) -> tuple[type[BundlingAlgorithm], dict]:
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValidationError(
            f"unknown algorithm {name!r}; available: {', '.join(algorithm_names())}"
        )
    return entry


def algorithm_options(name: str) -> tuple[str, ...]:
    """Constructor kwargs the registry entry *name* accepts.

    Preset kwargs (e.g. the ``strategy`` a ``pure_``/``mixed_`` entry pins)
    are excluded — they belong to the registry name, not the caller.
    """
    cls, preset = _entry(name)
    parameters = list(inspect.signature(cls.__init__).parameters.values())[1:]
    return tuple(
        parameter.name
        for parameter in parameters
        if parameter.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        and parameter.name not in preset
    )


def validate_algorithm_kwargs(name: str, kwargs: dict) -> None:
    """Raise :class:`ValidationError` on kwargs *name* does not accept."""
    accepted = algorithm_options(name)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        options = ", ".join(accepted) if accepted else "none"
        raise ValidationError(
            f"algorithm {name!r} does not accept option(s) "
            f"{', '.join(repr(k) for k in unknown)}; accepted options: {options}"
        )


def make_algorithm(name: str, **kwargs) -> BundlingAlgorithm:
    """Instantiate an algorithm by its registry name (kwargs validated)."""
    cls, preset = _entry(name)
    validate_algorithm_kwargs(name, kwargs)
    return cls(**preset, **kwargs)

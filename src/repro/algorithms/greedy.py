"""Algorithm 2: the greedy merge heuristic for k-sized bundling.

Where Algorithm 1 optimizes globally per iteration, the greedy algorithm
performs one merge per iteration: the pair of current bundles with the
highest absolute revenue gain.  The freshly merged bundle immediately
competes in the next iteration.  The run stops at the paper's natural
stopping condition — no remaining positive-gain merge.

Candidate gains live in a lazy max-heap: entries referencing replaced
bundles are discarded on pop, so each merge costs O(B log B) heap work
plus O(B) new gain evaluations (B = live bundles), matching the
O(M·N² + N² log N) analysis of Section 5.3.2.

Checkpoint/resume
-----------------
With checkpointing armed (see :class:`~repro.algorithms.base.
BundlingAlgorithm`), the live-bundle table — offers, creation batches,
mixed subtree states, retained offers — is persisted at each iteration
boundary.  The heap itself is *not* persisted: on resume it is rebuilt
canonically (:meth:`GreedyMerge._rebuild_heap`) by re-evaluating every
live candidate pair with the same chunk-pure scans and re-pushing in the
original insertion order, so gain ties break identically and the resumed
run replays the uninterrupted run's merges bit for bit.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.algorithms.base import (
    PURE,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
    check_executor_option,
    check_max_size,
    check_mixed_kernel_option,
    check_strategy,
    check_workers_option,
)
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.pricing import PricedBundle
from repro.core.revenue import RevenueEngine
from repro.utils.timer import Timer


class GreedyMerge(BundlingAlgorithm):
    """The paper's greedy heuristic (Algorithm 2)."""

    def __init__(
        self,
        strategy: str = PURE,
        k: int | None = None,
        co_support_pruning: bool = True,
        n_workers: int | None = None,
        mixed_kernel: str | None = None,
        executor: str | None = None,
    ) -> None:
        self.strategy = check_strategy(strategy)
        self.k = check_max_size(k)
        self.co_support_pruning = co_support_pruning
        self.n_workers = check_workers_option(n_workers)
        self.mixed_kernel = check_mixed_kernel_option(mixed_kernel)
        self.executor = check_executor_option(executor)
        self.name = f"{self.strategy}_greedy"

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer, self._engine_overrides(engine):
            mixed = self.strategy != PURE
            heap: list[tuple[float, int, int, int, object]] = []
            sequence = itertools.count()
            resume = self._take_resume()
            if resume is None:
                singles = engine.price_components()
                live: dict[int, PricedBundle] = dict(enumerate(singles))
                states: dict[int, object] = (
                    {index: engine.offer_state(offer) for index, offer in live.items()}
                    if mixed
                    else {}
                )
                # Creation batch per live id (0 = singleton, m = the merge
                # of iteration m) — the key that lets a resumed run rebuild
                # the heap in original insertion order.
                created_at: dict[int, int] = {index: 0 for index in live}
                next_id_start = len(singles)
                retained: list[PricedBundle] = []
                revenue_estimate = sum(offer.revenue for offer in singles)
                trace: list[IterationRecord] = []
                iteration = 0
            else:
                (
                    live,
                    states,
                    created_at,
                    next_id_start,
                    retained,
                    revenue_estimate,
                    trace,
                    iteration,
                ) = self._restore(engine, resume)
            # Bit-packed support words: merge-time co-support tests are a
            # word-AND over M/8 bytes instead of an O(M) boolean scan.
            support = {
                index: engine.support_bits(offer.bundle) for index, offer in live.items()
            }
            next_id = itertools.count(next_id_start)

            if resume is None:
                initial_pairs = self._initial_pairs(engine, list(live.values()))
                self._push_gains(
                    engine, heap, sequence, live, states, [(i, j) for i, j in initial_pairs]
                )
            else:
                self._rebuild_heap(
                    engine, heap, sequence, live, states, created_at, support
                )

            while heap:
                neg_gain, _seq, id1, id2, payload = heapq.heappop(heap)
                if id1 not in live or id2 not in live:
                    continue  # stale entry referencing a replaced bundle
                gain = -neg_gain
                if gain <= 0:
                    break
                iteration += 1
                first, second = live.pop(id1), live.pop(id2)
                if self.strategy == PURE:
                    offer: PricedBundle = payload  # the re-priced merged bundle
                else:
                    merge = payload
                    offer = PricedBundle(
                        merge.bundle,
                        merge.price,
                        first.revenue + second.revenue + merge.gain,
                        merge.upgraded,
                    )
                    retained.append(first)
                    retained.append(second)
                new_id = next(next_id)
                live[new_id] = offer
                created_at[new_id] = iteration
                if mixed:
                    base = states.pop(id1) + states.pop(id2)
                    states[new_id] = engine.merged_mixed_state(merge, base)
                new_support = support.pop(id1) | support.pop(id2)
                support[new_id] = new_support
                revenue_estimate += gain
                trace.append(
                    IterationRecord(
                        index=iteration,
                        revenue=revenue_estimate,
                        elapsed=timer.lap(),
                        n_top_bundles=len(live),
                        merges=1,
                    )
                )

                # New candidate pairs: the fresh bundle against every live one.
                partners = []
                for other_id, other in live.items():
                    if other_id == new_id:
                        continue
                    if self.k is not None and offer.size + other.size > self.k:
                        continue
                    if self.co_support_pruning and not np.any(
                        new_support & support[other_id]
                    ):
                        continue
                    partners.append(other_id)
                self._push_gains(
                    engine, heap, sequence, live, states, [(new_id, oid) for oid in partners]
                )
                self._emit_checkpoint(
                    engine,
                    iteration,
                    trace,
                    *self._checkpoint_state(
                        live, states, created_at, retained, revenue_estimate
                    ),
                )

            offers = list(live.values())
            if self.strategy == PURE:
                configuration = PureConfiguration(offers, engine.n_items)
            else:
                configuration = MixedConfiguration(offers + retained, engine.n_items)
        return self._finalize(engine, configuration, trace, timer)

    # ------------------------------------------------------------------ util
    def _initial_pairs(self, engine: RevenueEngine, singles) -> list[tuple[int, int]]:
        bundles = [offer.bundle for offer in singles]
        if self.co_support_pruning:
            pairs = engine.co_supported_pairs(bundles)
        else:
            pairs = [
                (i, j) for i in range(len(bundles)) for j in range(i + 1, len(bundles))
            ]
        if self.k is not None:
            pairs = [(i, j) for (i, j) in pairs if bundles[i].size + bundles[j].size <= self.k]
        return pairs

    def _push_gains(self, engine, heap, sequence, live, states, id_pairs) -> None:
        """Evaluate gains for bundle-id pairs and push positive ones."""
        if not id_pairs:
            return
        ids = sorted({identifier for pair in id_pairs for identifier in pair})
        position = {identifier: pos for pos, identifier in enumerate(ids)}
        priced = [live[identifier] for identifier in ids]
        index_pairs = [(position[a], position[b]) for a, b in id_pairs]
        if self.strategy == PURE:
            gains, merged = engine.pure_merge_gains(priced, index_pairs)
            for (id1, id2), gain, offer in zip(id_pairs, gains, merged):
                if gain > 0:
                    heapq.heappush(heap, (-float(gain), next(sequence), id1, id2, offer))
                else:
                    engine.drop_cached([offer.bundle])
        else:
            pair_states = [states[identifier] for identifier in ids]
            merges = engine.mixed_merge_gains(priced, pair_states, index_pairs)
            for (id1, id2), merge in zip(id_pairs, merges):
                if merge.feasible and merge.gain > 0:
                    heapq.heappush(heap, (-merge.gain, next(sequence), id1, id2, merge))

    # --------------------------------------------------------- checkpointing
    def _checkpoint_state(
        self, live, states, created_at, retained, revenue_estimate
    ) -> tuple[dict, dict]:
        """The restartable state at an iteration boundary (scalars, arrays)."""
        from repro.api.checkpoint import _float_fields, _offer_entry

        entries = []
        for identifier, offer in live.items():
            entry = _offer_entry(offer)
            entry["id"] = identifier
            entry["created_at"] = created_at[identifier]
            entries.append(entry)
        state = {
            "live": entries,
            "retained": [_offer_entry(offer) for offer in retained],
        }
        state.update(_float_fields(revenue_estimate, "revenue_estimate"))
        arrays = {}
        for identifier, subtree in states.items():
            arrays[f"score_{identifier}"] = subtree.score
            arrays[f"pay_{identifier}"] = subtree.pay
        return state, arrays

    def _restore(self, engine: RevenueEngine, checkpoint):
        """Rebuild the live-bundle table from a checkpoint (inverse of
        :meth:`_checkpoint_state`); the heap is rebuilt separately."""
        from repro.api.checkpoint import _read_float, _read_offer
        from repro.core.choice import SubtreeState
        from repro.errors import CheckpointError

        checkpoint.check_algorithm(self)
        checkpoint.check_population(engine.n_users)
        try:
            live = {}
            created_at = {}
            for entry in checkpoint.state["live"]:
                identifier = int(entry["id"])
                live[identifier] = _read_offer(entry)
                created_at[identifier] = int(entry["created_at"])
            retained = [_read_offer(entry) for entry in checkpoint.state["retained"]]
            revenue_estimate = _read_float(checkpoint.state, "revenue_estimate")
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointError(f"malformed greedy checkpoint state: {exc!r}") from exc
        states: dict[int, object] = {}
        if self.strategy != PURE:
            for identifier in live:
                try:
                    states[identifier] = SubtreeState(
                        checkpoint.arrays[f"score_{identifier}"],
                        checkpoint.arrays[f"pay_{identifier}"],
                    )
                except KeyError as exc:
                    raise CheckpointError(
                        f"checkpoint is missing the subtree state for live "
                        f"bundle {identifier}"
                    ) from exc
        next_id_start = max(live) + 1 if live else engine.n_items
        return (
            live,
            states,
            created_at,
            next_id_start,
            retained,
            revenue_estimate,
            checkpoint.read_trace(),
            checkpoint.iteration,
        )

    def _rebuild_heap(
        self, engine, heap, sequence, live, states, created_at, support
    ) -> None:
        """Re-push every live candidate pair in original insertion order.

        The heap breaks gain ties by insertion sequence, so replaying the
        uninterrupted run exactly requires re-pushing in the order the
        original pushes happened: iteration-0 pairs first (upper-triangle
        order — how :meth:`_initial_pairs` emits them), then each later
        batch's pairs by ascending partner id (how the partner loop walks
        ``live``, whose insertion order is ascending id).  Every live pair
        belongs to exactly one batch — the creation batch of its newer
        endpoint — and gains are re-evaluated by the same chunk-pure scans,
        so values and tie-breaks replay identically.
        """
        ids = sorted(live)
        ordered: list[tuple[tuple, int, int]] = []
        for position, id1 in enumerate(ids):
            for id2 in ids[position + 1 :]:
                if (
                    self.k is not None
                    and live[id1].bundle.size + live[id2].bundle.size > self.k
                ):
                    continue
                if self.co_support_pruning and not np.any(
                    support[id1] & support[id2]
                ):
                    continue
                batch = max(created_at[id1], created_at[id2])
                if batch == 0:
                    key = (0, id1, id2)
                    pair = (id1, id2)
                else:
                    # Batch-m pushes were (new_id, partner); replay the
                    # orientation too — it sets the retained-offer append
                    # order of mixed merges, which the solution records.
                    newer, partner = (
                        (id1, id2) if created_at[id1] == batch else (id2, id1)
                    )
                    key = (batch, partner, -1)
                    pair = (newer, partner)
                ordered.append((key, pair[0], pair[1]))
        ordered.sort(key=lambda item: item[0])
        self._push_gains(
            engine, heap, sequence, live, states, [(a, b) for _, a, b in ordered]
        )

"""Algorithm 2: the greedy merge heuristic for k-sized bundling.

Where Algorithm 1 optimizes globally per iteration, the greedy algorithm
performs one merge per iteration: the pair of current bundles with the
highest absolute revenue gain.  The freshly merged bundle immediately
competes in the next iteration.  The run stops at the paper's natural
stopping condition — no remaining positive-gain merge.

Candidate gains live in a lazy max-heap: entries referencing replaced
bundles are discarded on pop, so each merge costs O(B log B) heap work
plus O(B) new gain evaluations (B = live bundles), matching the
O(M·N² + N² log N) analysis of Section 5.3.2.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.algorithms.base import (
    PURE,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
    check_executor_option,
    check_max_size,
    check_mixed_kernel_option,
    check_strategy,
    check_workers_option,
)
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.pricing import PricedBundle
from repro.core.revenue import RevenueEngine
from repro.utils.timer import Timer


class GreedyMerge(BundlingAlgorithm):
    """The paper's greedy heuristic (Algorithm 2)."""

    def __init__(
        self,
        strategy: str = PURE,
        k: int | None = None,
        co_support_pruning: bool = True,
        n_workers: int | None = None,
        mixed_kernel: str | None = None,
        executor: str | None = None,
    ) -> None:
        self.strategy = check_strategy(strategy)
        self.k = check_max_size(k)
        self.co_support_pruning = co_support_pruning
        self.n_workers = check_workers_option(n_workers)
        self.mixed_kernel = check_mixed_kernel_option(mixed_kernel)
        self.executor = check_executor_option(executor)
        self.name = f"{self.strategy}_greedy"

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer, self._engine_overrides(engine):
            singles = engine.price_components()
            live: dict[int, PricedBundle] = dict(enumerate(singles))
            mixed = self.strategy != PURE
            states: dict[int, object] = (
                {index: engine.offer_state(offer) for index, offer in live.items()}
                if mixed
                else {}
            )
            # Bit-packed support words: merge-time co-support tests are a
            # word-AND over M/8 bytes instead of an O(M) boolean scan.
            support = {
                index: engine.support_bits(offer.bundle) for index, offer in live.items()
            }
            next_id = itertools.count(len(singles))
            retained: list[PricedBundle] = []
            revenue_estimate = sum(offer.revenue for offer in singles)
            trace: list[IterationRecord] = []
            heap: list[tuple[float, int, int, int, object]] = []
            sequence = itertools.count()

            initial_pairs = self._initial_pairs(engine, singles)
            self._push_gains(
                engine, heap, sequence, live, states, [(i, j) for i, j in initial_pairs]
            )

            iteration = 0
            while heap:
                neg_gain, _seq, id1, id2, payload = heapq.heappop(heap)
                if id1 not in live or id2 not in live:
                    continue  # stale entry referencing a replaced bundle
                gain = -neg_gain
                if gain <= 0:
                    break
                iteration += 1
                first, second = live.pop(id1), live.pop(id2)
                if self.strategy == PURE:
                    offer: PricedBundle = payload  # the re-priced merged bundle
                else:
                    merge = payload
                    offer = PricedBundle(
                        merge.bundle,
                        merge.price,
                        first.revenue + second.revenue + merge.gain,
                        merge.upgraded,
                    )
                    retained.append(first)
                    retained.append(second)
                new_id = next(next_id)
                live[new_id] = offer
                if mixed:
                    base = states.pop(id1) + states.pop(id2)
                    states[new_id] = engine.merged_mixed_state(merge, base)
                new_support = support.pop(id1) | support.pop(id2)
                support[new_id] = new_support
                revenue_estimate += gain
                trace.append(
                    IterationRecord(
                        index=iteration,
                        revenue=revenue_estimate,
                        elapsed=timer.lap(),
                        n_top_bundles=len(live),
                        merges=1,
                    )
                )

                # New candidate pairs: the fresh bundle against every live one.
                partners = []
                for other_id, other in live.items():
                    if other_id == new_id:
                        continue
                    if self.k is not None and offer.size + other.size > self.k:
                        continue
                    if self.co_support_pruning and not np.any(
                        new_support & support[other_id]
                    ):
                        continue
                    partners.append(other_id)
                self._push_gains(
                    engine, heap, sequence, live, states, [(new_id, oid) for oid in partners]
                )

            offers = list(live.values())
            if self.strategy == PURE:
                configuration = PureConfiguration(offers, engine.n_items)
            else:
                configuration = MixedConfiguration(offers + retained, engine.n_items)
        return self._finalize(engine, configuration, trace, timer)

    # ------------------------------------------------------------------ util
    def _initial_pairs(self, engine: RevenueEngine, singles) -> list[tuple[int, int]]:
        bundles = [offer.bundle for offer in singles]
        if self.co_support_pruning:
            pairs = engine.co_supported_pairs(bundles)
        else:
            pairs = [
                (i, j) for i in range(len(bundles)) for j in range(i + 1, len(bundles))
            ]
        if self.k is not None:
            pairs = [(i, j) for (i, j) in pairs if bundles[i].size + bundles[j].size <= self.k]
        return pairs

    def _push_gains(self, engine, heap, sequence, live, states, id_pairs) -> None:
        """Evaluate gains for bundle-id pairs and push positive ones."""
        if not id_pairs:
            return
        ids = sorted({identifier for pair in id_pairs for identifier in pair})
        position = {identifier: pos for pos, identifier in enumerate(ids)}
        priced = [live[identifier] for identifier in ids]
        index_pairs = [(position[a], position[b]) for a, b in id_pairs]
        if self.strategy == PURE:
            gains, merged = engine.pure_merge_gains(priced, index_pairs)
            for (id1, id2), gain, offer in zip(id_pairs, gains, merged):
                if gain > 0:
                    heapq.heappush(heap, (-float(gain), next(sequence), id1, id2, offer))
                else:
                    engine.drop_cached([offer.bundle])
        else:
            pair_states = [states[identifier] for identifier in ids]
            merges = engine.mixed_merge_gains(priced, pair_states, index_pairs)
            for (id1, id2), merge in zip(id_pairs, merges):
                if merge.feasible and merge.gain > 0:
                    heapq.heappush(heap, (-merge.gain, next(sequence), id1, id2, merge))

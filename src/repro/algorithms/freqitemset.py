"""Frequent-itemset bundling baselines (Section 6.1.3).

The paper simulates Amazon's "Frequently Bought Together" device: treat
each consumer as a transaction over the items she has positive WTP for,
mine maximal frequent itemsets (MAFIA), and greedily assemble a bundle
configuration from them — repeatedly picking the itemset with the highest
absolute revenue gain over its components, discarding overlapping
candidates, until all items are covered (individual items are always
available as candidates regardless of support, which favours the
baseline).

``Pure FreqItemset`` replaces the components by the chosen bundles;
``Mixed FreqItemset`` offers the chosen bundles alongside all components.
"""

from __future__ import annotations

from repro.algorithms.base import (
    PURE,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
    check_max_size,
    check_strategy,
)
from repro.core.bundle import Bundle
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.pricing import PricedBundle
from repro.core.revenue import RevenueEngine
from repro.errors import ValidationError
from repro.fim.mafia import maximal_frequent_itemsets
from repro.fim.transactions import TransactionDatabase
from repro.utils.timer import Timer

#: The paper found 0.1% minsup best on 4,449 users (density ≈0.5%); the
#: denser scaled-down defaults need a larger relative support both for
#: comparable candidate counts and for mining tractability.
DEFAULT_MINSUP = 0.05


class FreqItemsetBundling(BundlingAlgorithm):
    """Pure/Mixed FreqItemset baselines backed by the MAFIA miner."""

    def __init__(
        self,
        strategy: str = PURE,
        minsup: float = DEFAULT_MINSUP,
        k: int | None = None,
    ) -> None:
        self.strategy = check_strategy(strategy)
        if not 0 < minsup <= 1:
            raise ValidationError(f"minsup must lie in (0, 1], got {minsup}")
        self.minsup = minsup
        self.k = check_max_size(k)
        self.name = f"{self.strategy}_freqitemset"

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer:
            db = TransactionDatabase.from_wtp(engine.wtp)
            itemsets = maximal_frequent_itemsets(db, self.minsup, max_len=self.k)
            candidates = [Bundle(itemset) for itemset in itemsets if len(itemset) >= 2]
            singles = engine.price_components()

            if self.strategy == PURE:
                configuration, merges = self._fit_pure(engine, singles, candidates)
            else:
                configuration, merges = self._fit_mixed(engine, singles, candidates)
        trace = [
            IterationRecord(
                index=1,
                revenue=0.0,
                elapsed=timer.elapsed,
                n_top_bundles=len(configuration.offers),
                merges=merges,
            )
        ]
        result = self._finalize(engine, configuration, trace, timer)
        result.extra["n_candidates"] = len(candidates)
        return result

    def _fit_pure(self, engine, singles, candidates):
        priced = engine.price_bundles(candidates)
        scored = []
        for offer in priced:
            components_revenue = sum(singles[i].revenue for i in offer.bundle)
            gain = offer.revenue - components_revenue
            if gain > 0:
                scored.append((gain, offer))
        scored.sort(key=lambda entry: (-entry[0], entry[1].bundle.items))
        covered: set[int] = set()
        chosen: list[PricedBundle] = []
        for _gain, offer in scored:
            if covered.isdisjoint(offer.bundle.items):
                chosen.append(offer)
                covered.update(offer.bundle.items)
        offers = chosen + [singles[i] for i in range(engine.n_items) if i not in covered]
        return PureConfiguration(offers, engine.n_items), len(chosen)

    def _fit_mixed(self, engine, singles, candidates):
        scored = []
        for bundle in candidates:
            merge = engine.mixed_bundle_gain(bundle, [singles[i] for i in bundle])
            if merge.feasible and merge.gain > 0:
                subtree = sum(singles[i].revenue for i in bundle) + merge.gain
                offer = PricedBundle(bundle, merge.price, subtree, merge.upgraded)
                scored.append((merge.gain, offer))
        scored.sort(key=lambda entry: (-entry[0], entry[1].bundle.items))
        covered: set[int] = set()
        chosen: list[PricedBundle] = []
        for _gain, offer in scored:
            if covered.isdisjoint(offer.bundle.items):
                chosen.append(offer)
                covered.update(offer.bundle.items)
        offers = list(singles) + chosen
        return MixedConfiguration(offers, engine.n_items), len(chosen)

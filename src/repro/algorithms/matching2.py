"""Optimal 2-sized bundling via maximum-weight matching (Section 5.1).

Each item is a vertex; a candidate size-2 bundle is an edge weighted by its
revenue *gain* over its two components (equivalently, the paper weights
edges by absolute revenue and adds self-loops for singletons — the two
formulations have identical maximizers because singleton revenue is a
constant offset).  A maximum-weight matching then yields the provably
optimal configuration among all bundle configurations with bundles of at
most two items.

For mixed bundling, the edge weight is the *additional* expected revenue
from offering the bundle alongside its two components under the
incremental pricing policy, and the matching constraint enforces that each
component joins at most one bundle (Problem 2's laminarity).
"""

from __future__ import annotations

from repro.algorithms.base import (
    PURE,
    BundlingAlgorithm,
    BundlingResult,
    IterationRecord,
    check_strategy,
)
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.pricing import PricedBundle
from repro.core.revenue import RevenueEngine
from repro.matching.backends import solve_matching
from repro.utils.timer import Timer


class Optimal2Bundling(BundlingAlgorithm):
    """Exact solver for the 2-sized bundle configuration problem.

    No candidate pruning is applied (Section 5.1 presents this as the
    *optimal* algorithm; co-support pruning is only safe for θ ≤ 0 and
    belongs to the heuristics of Section 5.3).
    """

    strategy = PURE

    def __init__(self, strategy: str = PURE, backend: str = "blossom") -> None:
        self.strategy = check_strategy(strategy)
        self.backend = backend
        self.name = f"{self.strategy}_matching2"

    def fit(self, engine: RevenueEngine) -> BundlingResult:
        with Timer() as timer:
            singles = engine.price_components()
            n = engine.n_items
            pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
            gain_of: dict[tuple[int, int], float] = {}
            if self.strategy == PURE:
                gains, merged = engine.pure_merge_gains(singles, pairs)
                payload = {}
                edges = []
                for index, pair in enumerate(pairs):
                    if gains[index] > 0:
                        payload[pair] = merged[index]
                        gain_of[pair] = float(gains[index])
                        edges.append((pair[0], pair[1], gains[index]))
            else:
                states = [engine.offer_state(offer) for offer in singles]
                merges = engine.mixed_merge_gains(singles, states, pairs)
                payload = {}
                edges = []
                for pair, merge in zip(pairs, merges):
                    if merge.feasible and merge.gain > 0:
                        payload[pair] = merge
                        gain_of[pair] = merge.gain
                        edges.append((pair[0], pair[1], merge.gain))
            matched = solve_matching(edges, backend=self.backend)

            if self.strategy == PURE:
                taken = {index for pair in matched for index in pair}
                offers = [singles[i] for i in range(n) if i not in taken]
                offers += [payload[pair] for pair in sorted(matched)]
                configuration = PureConfiguration(offers, n)
            else:
                offers = list(singles)
                for pair in sorted(matched):
                    merge = payload[pair]
                    subtree_revenue = (
                        singles[pair[0]].revenue + singles[pair[1]].revenue + merge.gain
                    )
                    offers.append(
                        PricedBundle(merge.bundle, merge.price, subtree_revenue, merge.upgraded)
                    )
                configuration = MixedConfiguration(offers, n)

        trace = [
            IterationRecord(
                index=1,
                revenue=sum(o.revenue for o in singles) + sum(gain_of[pair] for pair in matched),
                elapsed=timer.elapsed,
                n_top_bundles=n - len(matched),
                merges=len(matched),
            )
        ]
        return self._finalize(engine, configuration, trace, timer)

"""Argument-validation helpers shared across the package.

These helpers raise :class:`repro.errors.ValidationError` with a message that
names the offending argument, which keeps call sites one line long and error
messages uniform.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` (and finite); return it."""
    if not math.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value >= 0`` (and finite); return it."""
    if not math.isfinite(value) or value < 0:
        raise ValidationError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1``; return it."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return int(value)

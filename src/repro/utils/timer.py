"""A small wall-clock timer used by algorithm traces and experiments."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch measuring wall-clock seconds.

    Usage::

        with Timer() as timer:
            do_work()
        print(timer.elapsed)

    The timer can also be used incrementally via :meth:`lap`, which returns
    seconds since construction (or since entering the context).
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._elapsed: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc_info) -> None:
        self._elapsed = time.perf_counter() - self._start

    def lap(self) -> float:
        """Seconds elapsed so far without stopping the timer."""
        return time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Total seconds measured; valid after the context exits."""
        if self._elapsed is None:
            return self.lap()
        return self._elapsed

    def __repr__(self) -> str:
        return f"Timer(elapsed={self.elapsed:.6f}s)"

"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Routing everything through
:func:`ensure_rng` keeps experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a fresh non-deterministic generator; an ``int`` or
    :class:`numpy.random.SeedSequence` yields a deterministic one; a
    ``Generator`` is passed through unchanged so callers can share state.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive *count* independent generators from one seed.

    Used by experiments that average over several stochastic runs: each run
    gets its own stream, so run ``i`` is reproducible regardless of how many
    total runs were requested.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's own seed sequence for independence.
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]

"""Shared utilities: validation, timing, RNG handling, text rendering."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "ensure_rng",
    "spawn_rngs",
]

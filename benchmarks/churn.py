"""CI churn-smoke gate: incremental refit must be warm, exact, and fast.

A serving population churns: users leave, new users arrive, the fitted
menu stays.  ``BundlingSolver.refit`` re-prices the retained menu across
a :class:`~repro.api.PopulationDelta` in O(|delta| log M) per bundle
instead of re-running the O(M·N²) bundling fit.  This script measures 1%
churn on the cloned Figure-7a workload (``--factor 250`` = 100k users)
and gates the two contracts the refit layer promises:

* **warm bit-identity** — the warm-refit menu's prices, revenues, buyer
  counts, and expected revenue are *exactly* (``==`` on float64) what
  cold re-pricing the same bundles on the post-delta population
  produces;
* **cold-fallback fingerprint identity** — a drift-forced refit
  (``drift_threshold=0``) reproduces ``fit(new_wtp)`` hex-for-hex
  (solution fingerprint equality);
* **speedup** — the warm refit beats the full cold fit by at least
  ``--min-speedup`` (default 3×).

The identity gates are deterministic and run everywhere.  The speedup
gate needs believable wall-clock, so with fewer than two available cores
it is skipped with a notice recorded as ``"skipped"`` in the report —
visible in the artifact, not silent — and the identity gates still
decide the exit code.

``--merge-existing`` additionally layers the measured cell under a
``"churn"`` key in ``BENCH_scalability.json`` (preserving every other
recorded cell), so the perf trajectory of incremental refit is diffable
next to the scan benchmarks.

Run from the repo root::

    PYTHONPATH=src python benchmarks/churn.py --factor 250
    PYTHONPATH=src python benchmarks/churn.py --factor 25 --merge-existing
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.api import AlgorithmSpec, BundlingSolver, EngineConfig, PopulationDelta
from repro.core.kernels import available_cpus
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "churn_smoke.json"
DEFAULT_BENCH_JSON = REPO_ROOT / "BENCH_scalability.json"

#: A threshold no churn of this size can cross: forces the warm path so
#: the gate measures the incremental machinery, not the fallback.
WARM_THRESHOLD = 1e6


def make_delta(wtp, churn: float, seed: int) -> PopulationDelta:
    """A symmetric ``churn`` fraction: drop N users, add N new rows.

    Arrivals are existing rows rescaled by a deterministic ±10% factor —
    plausible newcomers on the same WTP scale, not copies the sorted
    multiset could cancel out.
    """
    rng = np.random.default_rng(seed)
    n_churn = max(1, int(round(wtp.n_users * churn)))
    removed = np.sort(rng.choice(wtp.n_users, size=n_churn, replace=False))
    donors = rng.choice(wtp.n_users, size=n_churn, replace=False)
    scales = rng.uniform(0.9, 1.1, size=(n_churn, 1))
    added = wtp.values[donors] * scales
    return PopulationDelta(added=added, removed=tuple(int(i) for i in removed))


def check_warm_identity(warm_solution, engine_new) -> list[dict]:
    """Offer-level divergences between the warm menu and a cold re-price.

    Every comparison is exact float64 equality: the contract is
    bit-identity, not tolerance.
    """
    divergences = []
    for index, offer in enumerate(warm_solution.configuration.offers):
        cold = engine_new.price_bundle(offer.bundle)
        if (
            offer.price != cold.price
            or offer.revenue != cold.revenue
            or offer.buyers != cold.buyers
        ):
            divergences.append(
                {
                    "offer_index": index,
                    "warm": [offer.price, offer.revenue, offer.buyers],
                    "cold": [cold.price, cold.revenue, cold.buyers],
                }
            )
    return divergences


def build_report(args) -> tuple[dict, int]:
    """The churn-smoke report plus the process exit code."""
    cpu_count = available_cpus()
    report = {
        "benchmark": "churn-smoke (incremental refit vs full cold fit)",
        "base": {"n_users": 400, "n_items": 60, "seed": 2},
        "clone_factor": args.factor,
        "churn": args.churn,
        "algorithm": args.algorithm,
        "min_speedup": args.min_speedup,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
    }

    dataset = amazon_books_like(n_users=400, n_items=60, seed=2)
    wtp = wtp_from_ratings(dataset, conversion=1.25).clone_users(args.factor)
    report["n_users"] = wtp.n_users
    delta = make_delta(wtp, args.churn, seed=7)
    report["n_removed"] = delta.n_removed
    report["n_added"] = delta.n_added
    new_wtp = delta.apply(wtp)

    config = EngineConfig(drift_threshold=WARM_THRESHOLD)
    spec = AlgorithmSpec(args.algorithm, {"max_iterations": args.max_iterations})
    solver = BundlingSolver(spec, config)

    print(f"fitting {args.algorithm} on {wtp.n_users} users ...", flush=True)
    solution = solver.fit(wtp)

    # --- cold baseline: the full fit on the post-delta population -------
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    started = time.perf_counter()
    cold = solver.fit(new_wtp)
    cold_wall = time.perf_counter() - started

    # --- warm refit across the delta ------------------------------------
    tracemalloc.start()
    started = time.perf_counter()
    warm = solver.refit(solution, wtp, delta)
    warm_wall = time.perf_counter() - started
    _, warm_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    # --- gate (a): warm bit-identity vs a cold re-price of the menu -----
    engine_new = config.build(new_wtp)
    divergences = check_warm_identity(warm.solution, engine_new)
    warm_identical = warm.mode == "warm" and not divergences
    if divergences:
        report["divergences"] = divergences[:10]

    # --- gate (b): drift-forced refit reproduces fit(new_wtp) ----------
    forced = solver.refit(solution, wtp, delta, drift_threshold=0.0)
    cold_identical = (
        forced.mode == "cold"
        and forced.solution.fingerprint() == cold.fingerprint()
    )

    speedup = cold_wall / max(warm_wall, 1e-9)
    revenue_drift = abs(
        warm.solution.expected_revenue - solution.expected_revenue
    ) / max(abs(solution.expected_revenue), 1e-9)

    report["cells"] = {
        "cold_fit_wall_seconds": round(cold_wall, 4),
        "warm_refit_wall_seconds": round(warm_wall, 4),
        "warm_tracemalloc_peak_mb": round(warm_peak / 2**20, 2),
        "ru_maxrss_mb": round(rss_after / 1024, 2),  # Linux reports KiB
        "ru_maxrss_grew": bool(rss_after > rss_before),
    }

    identity_passed = warm_identical and cold_identical
    if cpu_count < 2:
        report["skipped"] = (
            f"only {cpu_count} CPU available - wall-clock on a contended "
            "single core is noise, so the speedup gate is advisory here; "
            "the bit-identity gates still ran and still decide the exit code"
        )
        print(f"SKIP (speedup gate): {report['skipped']}")
        passed = identity_passed
        gate = "warm and cold-fallback bit-identity (speedup skipped: 1 CPU)"
    else:
        passed = identity_passed and speedup >= args.min_speedup
        gate = (
            f"warm/cold bit-identity and warm refit >= {args.min_speedup}x "
            "faster than cold fit"
        )

    report["summary"] = {
        "warm_mode": warm.mode,
        "warm_bit_identical": warm_identical,
        "cold_fallback_fingerprint_identical": cold_identical,
        "speedup_x": round(speedup, 2),
        "revenue_drift": revenue_drift,
        # Infinite drift (structural: the Kupfer ratio appeared or
        # vanished) is not valid JSON; record it as None.
        "measured_drift": warm.drift if np.isfinite(warm.drift) else None,
        "gate": gate,
        "passed": passed,
    }
    print(json.dumps(report["summary"], indent=1))
    if not warm_identical:
        print("FAIL: warm refit diverges from a cold re-price", file=sys.stderr)
    if not cold_identical:
        print(
            "FAIL: drift-forced refit does not reproduce fit(new_wtp)",
            file=sys.stderr,
        )
    if identity_passed and not passed:
        print(
            f"FAIL: warm refit speedup {speedup:.2f}x is below the "
            f"{args.min_speedup}x gate",
            file=sys.stderr,
        )
    return report, 0 if passed else 1


def merge_into_bench(report: dict, bench_path: Path) -> None:
    """Layer the churn cell under ``"churn"`` in the scalability record.

    Everything else in the document — cells, summaries, platform — is
    preserved verbatim; re-running only replaces the churn section.
    """
    if not bench_path.exists():
        print(f"warning: {bench_path} does not exist - skipping merge")
        return
    bench = json.loads(bench_path.read_text())
    bench["churn"] = {
        "base": report["base"],
        "clone_factor": report["clone_factor"],
        "n_users": report["n_users"],
        "churn": report["churn"],
        "n_removed": report["n_removed"],
        "n_added": report["n_added"],
        "algorithm": report["algorithm"],
        "platform": report["platform"],
        "cells": report["cells"],
        "summary": report["summary"],
    }
    bench_path.write_text(json.dumps(bench, indent=1) + "\n")
    print(f"merged churn cell into {bench_path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=int,
        default=250,
        help="clone factor for the Figure-7a base workload (250 = 100k users)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="fraction of users removed (and the same count added)",
    )
    parser.add_argument(
        "--algorithm",
        default="pure_matching",
        help="registry algorithm fitted before the churn (default: the "
        "scalability benchmark's pure matching heuristic)",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=2,
        help="iteration cap, matching the scalability cells",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required warm-refit-vs-cold-fit wall-clock speedup",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--merge-existing",
        action="store_true",
        help="also record the cell under the 'churn' key of --bench-json, "
        "keeping every other recorded cell",
    )
    parser.add_argument("--bench-json", type=Path, default=DEFAULT_BENCH_JSON)
    args = parser.parse_args()
    report, code = build_report(args)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    if args.merge_existing:
        merge_into_bench(report, args.bench_json)
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Figure 6 — revenue gain versus running time, per iteration.

Shape targets (paper: Mixed Matching 10 iters/466 s vs Mixed Greedy
4,347 iters/1,241 s; Pure Matching 6 vs Pure Greedy 2,131): matching-based
algorithms converge in *far* fewer iterations than greedy, revenue is
non-decreasing over iterations for all four, and the matching variant
reaches its final revenue at least as fast per unit of revenue.
"""

import numpy as np

from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import figure6, render_figure6


def _run():
    dataset = amazon_books_like(n_users=600, n_items=100, seed=0)
    return figure6(wtp=wtp_from_ratings(dataset))


def test_fig6_revenue_vs_time(benchmark, archive):
    panels = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive("fig6_revenue_vs_time", render_figure6(panels))

    for strategy, matching_name, greedy_name in (
        ("mixed", "mixed_matching", "mixed_greedy"),
        ("pure", "pure_matching", "pure_greedy"),
    ):
        panel = panels[strategy]
        matching_iters = panel.extra[matching_name]
        greedy_iters = panel.extra[greedy_name]
        # Greedy does one merge per iteration: many more iterations.
        assert greedy_iters > matching_iters, strategy
        for name in (matching_name, greedy_name):
            gains = np.array(panel.series[f"{name}:gain%"])
            gains = gains[~np.isnan(gains)]
            if gains.size:
                assert np.all(np.diff(gains) >= -1e-9), f"{name} gain must not decrease"
                assert gains[-1] >= 0.0
        # Both end at (approximately) comparable revenue; matching >= greedy
        # is the paper's finding, allow a small slack for heuristic noise.
        m_gain = np.array(panel.series[f"{matching_name}:gain%"])
        g_gain = np.array(panel.series[f"{greedy_name}:gain%"])
        m_final = m_gain[~np.isnan(m_gain)][-1] if m_gain[~np.isnan(m_gain)].size else 0.0
        g_final = g_gain[~np.isnan(g_gain)][-1] if g_gain[~np.isnan(g_gain)].size else 0.0
        assert m_final >= 0.5 * g_final, strategy

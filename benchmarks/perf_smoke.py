"""CI perf-smoke gate: the process executor must actually be faster.

The committed ``BENCH_scalability.json`` was recorded on a 1-CPU container,
where every "parallel" ratio measures overhead rather than parallelism
(``summary.parallel_vs_serial`` is 1.03×).  GitHub-hosted runners have
multiple cores, so CI is where a genuine multi-core speedup can be
*measured and gated*.  This script runs the two O(M·N²) pair scans — one
pure, one mixed — once serially and once under
``executor="process", n_workers=W`` on a cloned Figure-7a workload, then:

* asserts the scans' results are **bit-identical** (every gain, price,
  upgrade count, and feasibility flag — stricter than comparing revenue);
* asserts the combined wall-clock speedup is at least ``--min-speedup``
  (default 1.2×);
* writes a JSON report (uploaded as a CI artifact) either way.

With fewer than two available cores the gate cannot mean anything, so the
script prints a skip notice, records ``"skipped"`` in the report, and
exits 0 — the skip is visible in the artifact, not silent.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_smoke.py --n-workers 2
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.api import EngineConfig
from repro.core.kernels import available_cpus
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "perf_smoke.json"


def run_scans(config: EngineConfig, wtp) -> dict:
    """Time one pure and one mixed pair scan under *config*.

    Engine construction, singleton pricing, co-support pruning, and state
    building are untimed prep: the gate measures the scans the executor
    actually parallelizes.  Returns wall times plus the full per-pair
    results for bit-identity checks.
    """
    engine = config.build(wtp)
    singles = engine.price_components()
    pairs = engine.co_supported_pairs([offer.bundle for offer in singles])

    started = time.perf_counter()
    gains, merged = engine.pure_merge_gains(singles, pairs)
    pure_wall = time.perf_counter() - started

    states = [engine.offer_state(offer) for offer in singles]
    started = time.perf_counter()
    merges = engine.mixed_merge_gains(singles, states, pairs)
    mixed_wall = time.perf_counter() - started

    return {
        "executor": config.executor,
        "n_workers": config.n_workers,
        "n_pairs": len(pairs),
        "pure_wall_seconds": round(pure_wall, 4),
        "mixed_wall_seconds": round(mixed_wall, 4),
        "total_wall_seconds": round(pure_wall + mixed_wall, 4),
        "pure_results": [
            (float(gain), offer.price, offer.revenue, offer.buyers)
            for gain, offer in zip(gains, merged)
        ],
        "mixed_results": [
            (merge.price, merge.gain, merge.upgraded, merge.feasible)
            for merge in merges
        ],
    }


def build_report(args) -> tuple[dict, int]:
    """The perf-smoke report plus the process exit code."""
    cpu_count = available_cpus()
    report = {
        "benchmark": "perf-smoke (process executor vs serial, pair scans)",
        "base": {"n_users": 400, "n_items": 60, "seed": 2},
        "clone_factor": args.factor,
        "n_workers": args.n_workers,
        "min_speedup": args.min_speedup,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
    }
    if cpu_count < 2:
        report["skipped"] = (
            f"only {cpu_count} CPU available - a process-vs-serial speedup "
            "gate is meaningless without a second core"
        )
        print(f"SKIP: {report['skipped']}")
        return report, 0

    dataset = amazon_books_like(n_users=400, n_items=60, seed=2)
    wtp = wtp_from_ratings(dataset, conversion=1.25).clone_users(args.factor)
    report["n_users"] = wtp.n_users

    serial = run_scans(EngineConfig(executor="serial"), wtp)
    process = run_scans(EngineConfig(executor="process", n_workers=args.n_workers), wtp)

    identical = (
        serial["pure_results"] == process["pure_results"]
        and serial["mixed_results"] == process["mixed_results"]
    )
    if not identical:
        # Keep evidence in the artifact: the first diverging pairs per
        # workload (the full vectors are dropped below to keep it small).
        report["divergences"] = {
            workload: [
                {"pair_index": k, "serial": s, "process": p}
                for k, (s, p) in enumerate(
                    zip(serial[f"{workload}_results"], process[f"{workload}_results"])
                )
                if s != p
            ][:10]
            for workload in ("pure", "mixed")
        }
    speedup = {
        "pure": serial["pure_wall_seconds"]
        / max(process["pure_wall_seconds"], 1e-9),
        "mixed": serial["mixed_wall_seconds"]
        / max(process["mixed_wall_seconds"], 1e-9),
        "combined": serial["total_wall_seconds"]
        / max(process["total_wall_seconds"], 1e-9),
    }
    passed = identical and speedup["combined"] >= args.min_speedup

    for cell in (serial, process):
        # The full result vectors verified above are too bulky for the
        # artifact; keep a compact revenue checksum per cell instead.
        cell["pure_revenue_sum"] = sum(r[2] for r in cell.pop("pure_results"))
        cell["mixed_gain_sum"] = sum(r[1] for r in cell.pop("mixed_results") if r[3])
    report["cells"] = [serial, process]
    report["summary"] = {
        "results_bit_identical": identical,
        "pure_speedup_x": round(speedup["pure"], 2),
        "mixed_speedup_x": round(speedup["mixed"], 2),
        "combined_speedup_x": round(speedup["combined"], 2),
        "gate": f"combined >= {args.min_speedup}x and bit-identical results",
        "passed": passed,
    }
    print(json.dumps(report["summary"], indent=1))
    if not identical:
        print("FAIL: process results differ from serial", file=sys.stderr)
    elif not passed:
        print(
            f"FAIL: combined speedup {speedup['combined']:.2f}x is below the "
            f"{args.min_speedup}x gate",
            file=sys.stderr,
        )
    return report, 0 if passed else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=int,
        default=250,
        help="clone factor for the Figure-7a base workload (250 = 100k users)",
    )
    parser.add_argument(
        "--n-workers",
        type=int,
        default=2,
        help="process-executor worker count (default 2: the minimum that "
        "can demonstrate parallelism)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="required combined wall-clock speedup over serial",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    report, code = build_report(args)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Tables 4 and 5 — comparison to weighted set packing.

Shape targets (paper, N=10..25): Pure Matching and Pure Greedy reach the
same revenue coverage as the exact Optimal on every sample; Greedy WSP
(the √N-approximation) trails by a wide margin; the heuristics run in
milliseconds while Optimal's cost explodes with N (the paper's N=25 run
never finished) and the O(M·2^N) enumeration dominates everything.
"""

import numpy as np

from repro.experiments import table45

SIZES = (8, 10, 12)


def _run():
    return table45(sample_sizes=SIZES, n_samples=3, include_bnb_up_to=10)


def test_table4_5_wsp(benchmark, archive):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive("table4_5_wsp", result.render(precision=4))

    coverage = result.extra["coverage"]
    times = result.extra["times"]
    for n in SIZES:
        optimal = np.mean(coverage["optimal_dp"][n])
        matching = np.mean(coverage["pure_matching"][n])
        greedy = np.mean(coverage["pure_greedy"][n])
        wsp = np.mean(coverage["greedy_wsp"][n])
        # Heuristics reach (essentially) the optimal coverage — Table 4.
        assert matching >= optimal - 0.005, f"N={n}: matching {matching} vs opt {optimal}"
        assert greedy >= optimal - 0.005, f"N={n}"
        # Optimal is an upper bound for every pure method.
        assert optimal >= matching - 1e-9 and optimal >= wsp - 1e-9
        # Greedy WSP trails clearly — Table 4's ~10-13 point deficit.
        assert wsp < optimal - 0.02, f"N={n}: greedy WSP should trail optimal"
    # Our heuristics are far faster than the full WSP pipeline (enumeration
    # + exact solve) — Table 5's comparison.  Minimum times are used (the
    # noise-free estimator) at the largest N, where the exponential cost of
    # the exact pipeline dominates any measurement jitter.
    top = SIZES[-1]
    wsp_total = np.min(times["optimal_dp"][top]) + np.min(result.extra["enumeration"][top])
    assert np.min(times["pure_matching"][top]) < wsp_total
    # Exact solve time explodes with N (3^N DP).
    dp_times = [np.mean(times["optimal_dp"][n]) for n in SIZES]
    assert dp_times[-1] > 5.0 * dp_times[0]
    # BnB agrees with DP on every sample it solved (both are exact).
    paired = coverage.get("dp_paired_with_bnb", {})
    for n in SIZES:
        for bnb_cov, dp_cov in zip(coverage["optimal_bnb"].get(n, []), paired.get(n, [])):
            assert abs(bnb_cov - dp_cov) < 1e-9

"""Table 2 — revenue coverage at different conversion factors λ.

Paper: optimal pricing flat at 77.7% across λ; Amazon list pricing peaks
at λ=1.25 (75.1%) with 59.0 / 62.6 / 62.8 / 54.9 elsewhere.  The repro
must show a λ-invariant optimal column and the same peaked list-price
profile (our synthetic marginals put the list-price column within half a
point of the paper's).
"""

import numpy as np

from repro.experiments import paper_values, table2


def test_table2_lambda(benchmark, archive):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    archive("table2_lambda", result.render())

    optimal = np.array(result.extra["optimal"])
    amazon = np.array(result.extra["amazon"])
    # Optimal pricing's coverage is invariant to lambda (WTP scales linearly).
    assert np.allclose(optimal, optimal[0], atol=1e-6)
    # Optimal dominates list pricing at every lambda.
    assert np.all(optimal >= amazon - 1e-9)
    # List pricing peaks at lambda = 1.25, like the paper.
    lambdas = list(paper_values.TABLE2_LAMBDAS)
    assert lambdas[int(np.argmax(amazon))] == 1.25
    # The list-price profile tracks the paper's within 2 points.
    assert np.all(np.abs(amazon - np.array(paper_values.TABLE2_AMAZON)) < 2.0)

"""Table 1 — the worked three-consumer example.

Paper: Components $27.00, Pure $30.40, Mixed $38.20.  Components and Pure
reproduce exactly; for Mixed both the paper's naive-affordability number
(38.40 here vs its 38.20) and the Section-4.2 upgrade-rule number (31.20)
are reported — see EXPERIMENTS.md.
"""

from repro.experiments import paper_values, table1


def test_table1_example(benchmark, archive):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    archive("table1_example", result.render())

    by_strategy = {row[0]: row for row in result.rows}
    assert by_strategy["Components"][2] == paper_values.TABLE1["components"]
    assert by_strategy["Pure bundling"][2] == paper_values.TABLE1["pure"]
    # Mixed: naive rule ≈ the paper's tabled value; upgrade rule is lower.
    assert abs(by_strategy["Mixed bundling"][3] - 38.40) < 1e-9
    assert by_strategy["Mixed bundling"][2] == 31.20
    # Ordering: mixed > pure > components under both rules.
    assert (
        by_strategy["Mixed bundling"][2]
        > by_strategy["Pure bundling"][2]
        > by_strategy["Components"][2]
    )

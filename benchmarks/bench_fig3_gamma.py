"""Figure 3 — coverage and gain versus stochastic sensitivity γ.

Shape targets: coverage rises with γ and plateaus (the step-function
limit); revenue *gain* over Components falls with γ (bundling's flatter
WTP distribution hedges adoption uncertainty, so it helps most when γ is
small); method ordering as in Figure 2.
"""

import numpy as np

from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import figure3

GAMMAS = (0.1, 1.0, 10.0, 100.0, 1.0e6)
METHODS = ("components", "pure_matching", "pure_greedy", "mixed_matching", "mixed_greedy")


def _run():
    dataset = amazon_books_like(n_users=400, n_items=60, seed=1)
    return figure3(gamma_values=GAMMAS, wtp=wtp_from_ratings(dataset), methods=METHODS)


def test_fig3_gamma(benchmark, archive):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive("fig3_gamma", series.render())

    components = np.array(series.series["components"])
    # Coverage increases with gamma ...
    assert np.all(np.diff(components) > -1e-9)
    # ... at a decreasing rate (plateau toward the step limit).
    assert components[-1] - components[-2] < components[1] - components[0]
    mixed_gain = np.array(series.series["gain:mixed_matching"])
    # Bundling's edge over Components shrinks as uncertainty vanishes.
    assert mixed_gain[0] > mixed_gain[-1]
    # Bundling never loses to Components at any gamma.
    for name in ("pure_matching", "mixed_matching", "mixed_greedy"):
        assert np.all(np.array(series.series[f"gain:{name}"]) >= -1e-9), name

"""Figure 1 — the stochastic adoption model (Equation 6).

Shape targets: probability 0.5 at p = α·w; γ flattens (γ<1) or sharpens
(γ>1) the curve; α shifts it left/right.
"""

import numpy as np

from repro.core.adoption import SigmoidAdoption, StepAdoption
from repro.experiments import figure1


def test_fig1_adoption_model(benchmark, archive):
    series = benchmark.pedantic(figure1, rounds=1, iterations=1)
    archive("fig1_adoption", series.render(precision=3))

    prices = np.array(series.x_values)
    mid = int(np.argmin(np.abs(prices - 10.0)))  # p == w
    for name in ("gamma=0.1", "gamma=1.0", "gamma=10.0"):
        curve = np.array(series.series[name])
        assert abs(curve[mid] - 0.5) < 1e-6, f"{name}: P(w=p) must be 0.5"
        assert np.all(np.diff(curve) <= 1e-12), f"{name}: P must fall with price"
    # Larger gamma -> steeper curve (larger drop across the midpoint).
    drops = {
        name: series.series[name][mid - 2] - series.series[name][mid + 2]
        for name in ("gamma=0.1", "gamma=1.0", "gamma=10.0")
    }
    assert drops["gamma=0.1"] < drops["gamma=1.0"] < drops["gamma=10.0"]
    # alpha > 1 raises adoption probability at every price, alpha < 1 lowers it.
    base = np.array(series.series["gamma=1.0"])
    assert np.all(np.array(series.series["alpha=1.25"]) >= base - 1e-12)
    assert np.all(np.array(series.series["alpha=0.75"]) <= base + 1e-12)
    # The step model is the pointwise gamma -> infinity limit (away from
    # the p = w boundary, where the sigmoid sits at exactly 0.5).
    step = StepAdoption()
    huge = SigmoidAdoption(gamma=1e9)
    w = np.full(prices.size, 10.0)
    off_boundary = np.abs(prices - 10.0) > 1e-9
    assert np.allclose(
        step.probability(w, prices)[off_boundary],
        np.round(huge.probability(w, prices))[off_boundary],
    )

"""Ablation — the two pruning rules of Algorithm 1 (Section 5.3.1).

Co-support pruning (iteration 1) and new-vertex pruning (iterations ≥ 2)
are heuristics: they must cut candidate-pair evaluations substantially
while losing (essentially) no revenue at θ ≤ 0.
"""

from repro.algorithms.matching_iterative import IterativeMatching
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import render_table
from repro.experiments.defaults import default_engine


def _run():
    dataset = amazon_books_like(n_users=500, n_items=80, seed=0)
    wtp = wtp_from_ratings(dataset)
    rows = []
    outcomes = {}
    for co_support, new_vertex in ((True, True), (True, False), (False, True), (False, False)):
        engine = default_engine(wtp)
        engine.stats.reset()
        result = IterativeMatching(
            strategy="mixed",
            co_support_pruning=co_support,
            new_vertex_pruning=new_vertex,
        ).fit(engine)
        label = f"co_support={co_support}, new_vertex={new_vertex}"
        outcomes[(co_support, new_vertex)] = (result, engine.stats.mixed_pricings)
        rows.append(
            [
                label,
                round(result.coverage * 100, 3),
                engine.stats.mixed_pricings,
                result.n_iterations,
                round(result.wall_time, 3),
            ]
        )
    return rows, outcomes


def test_ablation_pruning(benchmark, archive):
    rows, outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(
        "ablation_pruning",
        render_table(
            ["setting", "coverage %", "pair pricings", "iterations", "seconds"],
            rows,
            title="=== Ablation: Algorithm 1 pruning rules (mixed, theta=0) ===",
        ),
    )
    full, full_ops = outcomes[(True, True)]
    none, none_ops = outcomes[(False, False)]
    # Pruning must reduce work ...
    assert full_ops < none_ops
    # ... and cost at most a sliver of revenue at theta = 0.
    assert full.coverage >= none.coverage - 0.005

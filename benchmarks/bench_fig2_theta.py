"""Figure 2 — revenue coverage and gain versus the bundling coefficient θ.

Shape targets (paper, Section 6.2):
* Components is unaffected by θ and is never above any bundling method;
* Mixed Matching / Mixed Greedy lead at θ ≤ 0;
* Pure methods degenerate toward Components as θ decreases, and surge past
  everything as θ ≫ 0 (the seller extracts the complementarity premium);
* the FreqItemset baselines trail our corresponding methods.
"""

import numpy as np

from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import figure2
from repro.experiments.figures import THETA_VALUES


def _run():
    dataset = amazon_books_like(n_users=600, n_items=100, seed=0)
    return figure2(wtp=wtp_from_ratings(dataset))


def test_fig2_theta(benchmark, archive):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive("fig2_theta", series.render())

    cov = {name: np.array(vals) for name, vals in series.series.items()
           if not name.startswith("gain:")}
    thetas = np.array(THETA_VALUES)

    # Components is theta-invariant.
    assert np.allclose(cov["components"], cov["components"][0], atol=1e-9)
    # No bundling method ever loses to Components (they revert if beaten).
    for name, values in cov.items():
        assert np.all(values >= cov["components"] - 1e-9), name
    # Mixed leads pure at theta <= 0.
    negative = thetas <= 0
    assert np.all(cov["mixed_matching"][negative] >= cov["pure_matching"][negative] - 1e-9)
    # Pure surges at the largest positive theta and beats mixed there.
    top = -1
    assert cov["pure_matching"][top] > cov["mixed_matching"][top]
    # Pure methods increase with theta.
    assert cov["pure_matching"][-1] > cov["pure_matching"][0]
    # Our methods beat the corresponding FreqItemset baselines at theta = 0.
    at0 = int(np.argmin(np.abs(thetas)))
    assert cov["mixed_matching"][at0] >= cov["mixed_freqitemset"][at0] - 1e-9
    assert cov["pure_matching"][at0] >= cov["pure_freqitemset"][at0] - 1e-9

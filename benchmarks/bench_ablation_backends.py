"""Ablation — matching backend (our blossom vs networkx).

Both backends are exact, so the resulting configurations' revenues must be
identical; the bench reports the speed difference on the paper's matching
workload (dense positive-gain graphs from iteration 1 of Algorithm 1).
"""

import numpy as np

from repro.algorithms.matching_iterative import IterativeMatching
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import render_table
from repro.experiments.defaults import default_engine
from repro.matching.backends import solve_matching
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer


def _run():
    dataset = amazon_books_like(n_users=500, n_items=80, seed=0)
    wtp = wtp_from_ratings(dataset)
    rows = []
    revenues = {}
    for backend in ("blossom", "networkx"):
        engine = default_engine(wtp)
        with Timer() as timer:
            result = IterativeMatching(strategy="mixed", backend=backend).fit(engine)
        revenues[backend] = result.expected_revenue
        rows.append([backend, round(result.expected_revenue, 2), round(timer.elapsed, 3)])

    # Raw matching speed on random dense graphs (same graphs per backend).
    rng = ensure_rng(7)
    graphs = []
    for _trial in range(3):
        n = 120
        graphs.append(
            [
                (i, j, float(rng.integers(1, 1000)))
                for i in range(n)
                for j in range(i + 1, n)
                if rng.random() < 0.3
            ]
        )
    weights = {}
    for backend in ("blossom", "networkx"):
        with Timer() as timer:
            total = 0.0
            for edges in graphs:
                matching = solve_matching(edges, backend=backend)
                lookup = {(min(u, v), max(u, v)): w for u, v, w in edges}
                total += sum(lookup[pair] for pair in matching)
        weights[backend] = total
        rows.append([f"{backend} (raw graphs)", round(total, 1), round(timer.elapsed, 3)])
    return rows, revenues, weights


def test_ablation_backends(benchmark, archive):
    rows, revenues, weights = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(
        "ablation_backends",
        render_table(
            ["backend", "revenue / matching weight", "seconds"],
            rows,
            title="=== Ablation: matching backends (both exact) ===",
        ),
    )
    # Identical optimal matching weight; configurations may differ slightly
    # when multiple optimal matchings exist, so revenue gets a small band.
    assert np.isclose(weights["blossom"], weights["networkx"], rtol=1e-9)
    assert np.isclose(revenues["blossom"], revenues["networkx"], rtol=0.01)

"""Ablation — price-grid resolution (Section 4.2).

The paper uses T=100 levels and notes that "larger numbers do not result
in much higher revenue".  This bench sweeps T and compares against the
provably optimal exact-grid pricing for the step model.
"""

from repro.algorithms.components import Components
from repro.core.pricing import PriceGrid
from repro.core.revenue import RevenueEngine
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import render_table

LEVELS = (10, 25, 50, 100, 200, 400)


def _run():
    dataset = amazon_books_like(n_users=600, n_items=100, seed=0)
    wtp = wtp_from_ratings(dataset)
    exact = Components().fit(RevenueEngine(wtp, grid=PriceGrid(mode="exact")))
    rows = [["exact", round(exact.coverage * 100, 4), None]]
    coverages = []
    for n_levels in LEVELS:
        engine = RevenueEngine(wtp, grid=PriceGrid(n_levels=n_levels))
        run = Components().fit(engine)
        coverages.append(run.coverage)
        rows.append(
            [
                f"T={n_levels}",
                round(run.coverage * 100, 4),
                round(100 * (exact.coverage - run.coverage) / exact.coverage, 3),
            ]
        )
    return rows, coverages, exact.coverage


def test_ablation_price_grid(benchmark, archive):
    rows, coverages, exact_coverage = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive(
        "ablation_grid",
        render_table(
            ["grid", "coverage %", "loss vs exact %"],
            rows,
            title="=== Ablation: price-grid resolution (Components) ===",
            precision=4,
        ),
    )
    # Grid pricing never beats the exact scan and does not degrade with
    # resolution (up to float noise — this dataset saturates early).
    assert all(c <= exact_coverage + 1e-12 for c in coverages)
    assert coverages[-1] >= coverages[0] - 1e-9
    # The paper's T=100 sits within ~2% of exact (its "larger T gains little").
    t100 = coverages[LEVELS.index(100)]
    assert (exact_coverage - t100) / exact_coverage < 0.02

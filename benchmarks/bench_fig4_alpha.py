"""Figure 4 — coverage and gain versus adoption bias α.

Shape targets: coverage rises (approximately linearly — α keeps raising
every consumer's effective willingness to pay, with no plateau unlike γ);
gain over Components falls with α; ordering as before.
"""

import numpy as np

from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import figure4
from repro.experiments.figures import ALPHA_VALUES

METHODS = ("components", "pure_matching", "pure_greedy", "mixed_matching", "mixed_greedy")


def _run():
    dataset = amazon_books_like(n_users=400, n_items=60, seed=1)
    return figure4(wtp=wtp_from_ratings(dataset), methods=METHODS)


def test_fig4_alpha(benchmark, archive):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive("fig4_alpha", series.render())

    alphas = np.array(ALPHA_VALUES)
    components = np.array(series.series["components"])
    # Coverage rises with alpha, without the gamma plateau: close to linear.
    assert np.all(np.diff(components) > 0)
    fitted = np.polyfit(alphas, components, 1)
    residual = components - np.polyval(fitted, alphas)
    assert np.max(np.abs(residual)) < 0.02, "coverage-vs-alpha should be near-linear"
    # Bundling still never loses to Components.
    for name in METHODS[1:]:
        assert np.all(np.array(series.series[f"gain:{name}"]) >= -1e-9), name

"""Machine-readable scalability benchmark (Section 6.3 at streaming scale).

Clones the Figure 7(a) workload up to one million users and runs the
matching heuristic once per (algorithm × backend × clone factor) cell,
recording wall-clock, Python-level peak memory (``tracemalloc``), and the
process high-water RSS (``resource.getrusage``).  Results land in
``BENCH_scalability.json`` at the repo root so future PRs can diff the
perf trajectory instead of re-reading prose.

Backends
--------
``unchunked-float64``
    ``chunk_elements=None`` — the original behaviour: the whole O(M·N²/2)
    candidate stack is materialized at once.  This is the *before* column.
``streaming-float64``
    The default streaming engine; bit-identical results, bounded buffers.
``streaming-float64-w4``
    The streaming engine with ``n_workers=4``: chunks fan out over a
    thread pool (bit-identical to serial; wall-clock scales with *cores* —
    check ``platform.cpu_count`` in the report before reading the ratio).
``streaming-float32`` / ``streaming-sparse``
    The reduced-precision and CSC-sparse WTP storage backends.
``streaming-lean-mixed`` / ``streaming-lean-mixed-w4``
    ``state_dtype=float32`` with the **band** mixed kernel (pinned — these
    columns predate kernel selection and stay comparable to the committed
    history): mixed-strategy subtree states at half memory, serial and
    4-worker — the backends that first carried mixed matching to 1M users.
``streaming-lean-mixed-sorted`` / ``streaming-lean-mixed-sorted-w4``
    Same, with ``mixed_kernel="sorted"`` — the O(M log M + T) prefix-sum
    kernel that replaces the band kernel's O(T'·M) per-pair level scan.
``streaming-float64-p4`` / ``streaming-lean-mixed-sorted-p4``
    The w4 columns with ``executor="process"``: chunk subsets fan out over
    worker *processes* attached to shared-memory scan inputs, so the scan
    escapes the GIL entirely.  Only meaningful on multi-core hosts (each
    cell records ``cpu_count``); the CI ``perf-smoke`` job gates the
    process-vs-serial speedup on a real 2+-core runner.

Run from the repo root::

    PYTHONPATH=src python benchmarks/scalability_json.py
    PYTHONPATH=src python benchmarks/scalability_json.py --factors 50 125 250

The committed artifact layers new cells over the retained PR 2 matrix
(pure cells and the 1M-user ``streaming-lean-mixed-w4`` band cell) with
``--merge-existing``, which keeps previously recorded cells without
re-measuring them.  A bare ``--factors`` runs no pure cells::

    PYTHONPATH=src python benchmarks/scalability_json.py \
        --factors --mixed-factors 250 \
        --mixed-backends streaming-lean-mixed streaming-lean-mixed-sorted \
        --merge-existing
    PYTHONPATH=src python benchmarks/scalability_json.py \
        --factors --mixed-factors 2500 \
        --mixed-backends streaming-lean-mixed-sorted-w4 --merge-existing

The matching heuristic is capped at two iterations (one for the 1M mixed
cell): the first iteration's full pair scan is exactly the allocation the
streaming kernels bound, and a fixed cap keeps cells comparable across
factors.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import time
import tracemalloc
from pathlib import Path

from repro.api import AlgorithmSpec, EngineConfig
from repro.core.kernels import DEFAULT_CHUNK_ELEMENTS, available_cpus
from repro.core.pricing import resolve_mixed_kernel
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_scalability.json"

#: Typed engine config per backend column (the former loose-kwargs dicts).
#: The lean-mixed columns pin ``mixed_kernel`` explicitly (the engine
#: default is ``"auto"``) so a column always measures the same kernel the
#: committed history recorded.
BACKENDS = {
    "unchunked-float64": EngineConfig(chunk_elements=None),
    "streaming-float64": EngineConfig(),
    "streaming-float64-w4": EngineConfig(n_workers=4),
    "streaming-float32": EngineConfig(precision="float32"),
    "streaming-sparse": EngineConfig(storage="sparse"),
    "streaming-lean-mixed": EngineConfig(state_dtype="float32", mixed_kernel="band"),
    "streaming-lean-mixed-w4": EngineConfig(
        state_dtype="float32", n_workers=4, mixed_kernel="band"
    ),
    "streaming-lean-mixed-sorted": EngineConfig(
        state_dtype="float32", mixed_kernel="sorted"
    ),
    "streaming-lean-mixed-sorted-w4": EngineConfig(
        state_dtype="float32", n_workers=4, mixed_kernel="sorted"
    ),
    "streaming-float64-p4": EngineConfig(n_workers=4, executor="process"),
    "streaming-lean-mixed-sorted-p4": EngineConfig(
        state_dtype="float32", n_workers=4, mixed_kernel="sorted",
        executor="process",
    ),
}


def measure_cell(
    wtp, config: EngineConfig, strategy: str, max_iterations: int
) -> dict:
    """One (algorithm, backend, factor) cell: fit matching under tracemalloc."""
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    tracemalloc.start()
    started = time.perf_counter()
    engine = config.build(wtp)
    result = (
        AlgorithmSpec(
            f"{strategy}_matching", {"max_iterations": max_iterations}
        )
        .build()
        .fit(engine)
    )
    wall = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "wall_seconds": round(wall, 4),
        "tracemalloc_peak_mb": round(peak / 2**20, 2),
        "ru_maxrss_mb": round(rss_after / 1024, 2),  # Linux reports KiB
        "ru_maxrss_grew": bool(rss_after > rss_before),
        "expected_revenue": result.expected_revenue,
        "iterations": result.n_iterations,
        "max_iterations": max_iterations,
        # Resolved mixed kernel (pure cells never touch it).
        "mixed_kernel": (
            resolve_mixed_kernel(engine.mixed_kernel, engine.adoption)
            if strategy == "mixed"
            else None
        ),
        # Execution backend + the cores it could actually schedule on
        # (affinity-aware): a "parallel" ratio is only as meaningful as
        # the cpu_count it ran under.
        "executor": config.executor,
        "cpu_count": available_cpus(),
    }


def summarize(runs: list[dict]) -> dict:
    """Cross-cell ratios: streaming-vs-unchunked and serial-vs-parallel."""
    summary: dict = {}

    def cell(algorithm, backend, factor):
        for run_ in runs:
            if (
                run_["algorithm"] == algorithm
                and run_["backend"] == backend
                and run_["clone_factor"] == factor
            ):
                return run_
        return None

    factors = sorted({r["clone_factor"] for r in runs}, reverse=True)
    for factor in factors:
        before = cell("pure", "unchunked-float64", factor)
        after = cell("pure", "streaming-float64", factor)
        if before and after:
            summary["streaming_vs_unchunked"] = {
                "clone_factor": factor,
                "n_users": after["n_users"],
                "peak_memory_reduction_x": round(
                    before["tracemalloc_peak_mb"]
                    / max(after["tracemalloc_peak_mb"], 1e-9),
                    2,
                ),
                "wall_clock_speedup_x": round(
                    before["wall_seconds"] / max(after["wall_seconds"], 1e-9), 2
                ),
                "revenues_identical": before["expected_revenue"]
                == after["expected_revenue"],
            }
            break
    for factor in factors:
        serial = cell("pure", "streaming-float64", factor)
        threaded = cell("pure", "streaming-float64-w4", factor)
        if serial and threaded:
            summary["parallel_vs_serial"] = {
                "clone_factor": factor,
                "n_users": serial["n_users"],
                "n_workers": 4,
                "serial_wall_seconds": serial["wall_seconds"],
                "parallel_wall_seconds": threaded["wall_seconds"],
                "wall_clock_speedup_x": round(
                    serial["wall_seconds"] / max(threaded["wall_seconds"], 1e-9), 2
                ),
                "revenues_identical": serial["expected_revenue"]
                == threaded["expected_revenue"],
            }
            break
    # Process vs thread executors at equal worker count: the GIL tax the
    # shared-memory process path removes.  A ratio across hosts is
    # meaningless, so retained cells (recorded by an earlier invocation,
    # possibly elsewhere) never pair with fresh ones.
    for factor in factors:
        threaded = cell("pure", "streaming-float64-w4", factor)
        process_cell = cell("pure", "streaming-float64-p4", factor)
        if threaded and process_cell:
            if threaded.get("retained_from_previous_record") != process_cell.get(
                "retained_from_previous_record"
            ):
                continue
            summary["process_vs_thread"] = {
                "clone_factor": factor,
                "n_users": threaded["n_users"],
                "n_workers": 4,
                "thread_cpu_count": threaded.get("cpu_count"),
                "process_cpu_count": process_cell.get("cpu_count"),
                "thread_wall_seconds": threaded["wall_seconds"],
                "process_wall_seconds": process_cell["wall_seconds"],
                "wall_clock_speedup_x": round(
                    threaded["wall_seconds"]
                    / max(process_cell["wall_seconds"], 1e-9),
                    2,
                ),
                "revenues_identical": threaded["expected_revenue"]
                == process_cell["expected_revenue"],
            }
            break
    # Sorted-vs-band mixed kernel, one entry per factor where both kernels
    # have a cell (largest factor first).  Cells are paired only when their
    # backends differ solely by the "-sorted" token (same worker count and
    # state dtype), so the ratio measures the kernel and nothing else.
    kernel_entries = []
    for factor in factors:
        mixed_cells = [
            r
            for r in runs
            if r["algorithm"] == "mixed" and r["clone_factor"] == factor
        ]
        by_backend = {r["backend"]: r for r in mixed_cells}
        band = srt = None
        for r in mixed_cells:
            if r.get("mixed_kernel") != "sorted":
                continue
            partner = by_backend.get(r["backend"].replace("-sorted", ""))
            if partner and partner.get("mixed_kernel") == "band":
                band, srt = partner, r
                break
        if band and srt:
            kernel_entries.append(
                {
                    "clone_factor": factor,
                    "n_users": srt["n_users"],
                    "band_backend": band["backend"],
                    "sorted_backend": srt["backend"],
                    "band_wall_seconds": band["wall_seconds"],
                    "sorted_wall_seconds": srt["wall_seconds"],
                    "wall_clock_speedup_x": round(
                        band["wall_seconds"] / max(srt["wall_seconds"], 1e-9), 2
                    ),
                    "revenue_relative_delta": (
                        abs(srt["expected_revenue"] - band["expected_revenue"])
                        / max(abs(band["expected_revenue"]), 1e-9)
                    ),
                }
            )
    if kernel_entries:
        summary["mixed_sorted_vs_band"] = kernel_entries
    million = [r for r in runs if r["n_users"] >= 1_000_000]
    if million:
        summary["million_user_runs"] = [
            {
                "algorithm": r["algorithm"],
                "backend": r["backend"],
                "mixed_kernel": r.get("mixed_kernel"),
                "n_users": r["n_users"],
                "wall_seconds": r["wall_seconds"],
                "ru_maxrss_mb": r["ru_maxrss_mb"],
                "iterations": r["iterations"],
                "completed": True,
            }
            for r in million
        ]
    return summary


def run(args) -> dict:
    dataset = amazon_books_like(
        n_users=args.base_users, n_items=args.base_items, seed=args.seed
    )
    base_wtp = wtp_from_ratings(dataset, conversion=1.25)
    plan: dict[int, list[tuple[str, str, int]]] = {}
    for factor in args.factors:
        plan.setdefault(factor, []).extend(
            ("pure", backend, args.max_iterations) for backend in args.backends
        )
    for factor in args.mixed_factors:
        plan.setdefault(factor, []).extend(
            ("mixed", backend, args.mixed_max_iterations)
            for backend in args.mixed_backends
        )

    runs = []
    for factor in sorted(plan):
        wtp = base_wtp.clone_users(factor) if factor > 1 else base_wtp
        for strategy, backend, max_iterations in plan[factor]:
            cell = measure_cell(wtp, BACKENDS[backend], strategy, max_iterations)
            cell.update(
                algorithm=strategy,
                backend=backend,
                clone_factor=factor,
                n_users=wtp.n_users,
                n_items=wtp.n_items,
            )
            runs.append(cell)
            print(
                f"factor={factor:>4} users={wtp.n_users:>8} {strategy:<5} "
                f"{backend:<28} wall={cell['wall_seconds']:>8.2f}s "
                f"peak={cell['tracemalloc_peak_mb']:>9.1f}MB "
                f"revenue={cell['expected_revenue']:.2f}",
                flush=True,
            )
        del wtp

    if args.merge_existing and args.output.exists():
        # Retain previously recorded cells this invocation did not re-run
        # (keyed by algorithm × backend × factor), so multi-minute history —
        # e.g. the 1M-user band-kernel mixed cell — survives re-recording.
        # Only cells from the *same base workload* are comparable: a record
        # produced under a different seed or base shape is skipped outright
        # rather than merged into ratios it cannot support.
        previous = json.loads(args.output.read_text())
        base = {
            "n_users": args.base_users,
            "n_items": args.base_items,
            "seed": args.seed,
        }
        if previous.get("base") != base:
            print(
                f"warning: not merging {args.output} — its base workload "
                f"{previous.get('base')} differs from this run's {base}"
            )
        else:
            fresh = {(r["algorithm"], r["backend"], r["clone_factor"]) for r in runs}
            retained = [
                r
                for r in previous.get("runs", [])
                if (r["algorithm"], r["backend"], r["clone_factor"]) not in fresh
            ]
            for r in retained:
                # Cells recorded before kernel selection existed ran the
                # only mixed kernel of their era: the band scan.
                if r["algorithm"] == "mixed" and "mixed_kernel" not in r:
                    r["mixed_kernel"] = "band"
                # Cells recorded before executor selection existed all ran
                # the thread pool (n_workers=1 degenerates to serial).
                r.setdefault("executor", "thread")
                r.setdefault("retained_from_previous_record", True)
            runs = retained + runs
            runs.sort(key=lambda r: (r["clone_factor"], r["algorithm"], r["backend"]))

    return {
        "benchmark": "scalability (Figure 7a workload, matching, capped iterations)",
        "base": {
            "n_users": args.base_users,
            "n_items": args.base_items,
            "seed": args.seed,
        },
        "chunk_elements": DEFAULT_CHUNK_ELEMENTS,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            # Thread speedups are bounded by this: on a 1-CPU container the
            # 4-worker columns measure overhead, not parallelism.
            "cpu_count": os.cpu_count(),
        },
        "summary": summarize(runs),
        "runs": runs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factors",
        type=int,
        nargs="*",
        default=[50, 125, 250],
        help="clone factors for the pure matching cells (pass the bare flag "
        "to run no pure cells, e.g. for a mixed-only --merge-existing update)",
    )
    parser.add_argument("--base-users", type=int, default=400)
    parser.add_argument("--base-items", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--max-iterations", type=int, default=2)
    parser.add_argument(
        "--backends",
        nargs="+",
        choices=sorted(BACKENDS),
        default=["unchunked-float64", "streaming-float64", "streaming-float32", "streaming-sparse"],
        help="backends for the pure matching cells",
    )
    parser.add_argument(
        "--mixed-factors",
        type=int,
        nargs="*",
        default=[],
        help="clone factors at which to run mixed matching cells",
    )
    parser.add_argument(
        "--mixed-backends",
        nargs="+",
        choices=sorted(BACKENDS),
        default=["streaming-lean-mixed-w4"],
        help="backends for the mixed matching cells",
    )
    parser.add_argument(
        "--mixed-max-iterations",
        type=int,
        default=1,
        help="iteration cap for mixed cells (the scan per iteration is ~20x "
        "a pure one at 1M users)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--merge-existing",
        action="store_true",
        help="keep cells already recorded in --output that this invocation "
        "does not re-run (summaries recompute over the merged set)",
    )
    args = parser.parse_args()
    report = run(args)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nwrote {args.output}")
    if report["summary"]:
        print(json.dumps(report["summary"], indent=1))


if __name__ == "__main__":
    main()

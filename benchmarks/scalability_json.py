"""Machine-readable scalability benchmark (Section 6.3 at streaming scale).

Clones the Figure 7(a) workload up to hundreds of thousands of users and
runs the pure matching heuristic once per (backend × clone factor) cell,
recording wall-clock, Python-level peak memory (``tracemalloc``), and the
process high-water RSS (``resource.getrusage``).  Results land in
``BENCH_scalability.json`` at the repo root so future PRs can diff the
perf trajectory instead of re-reading prose.

Backends
--------
``unchunked-float64``
    ``chunk_elements=None`` — the original behaviour: the whole O(M·N²/2)
    candidate stack is materialized at once.  This is the *before* column.
``streaming-float64``
    The default streaming engine; bit-identical results, bounded buffers.
``streaming-float32`` / ``streaming-sparse``
    The reduced-precision and CSC-sparse WTP storage backends.

Run from the repo root::

    PYTHONPATH=src python benchmarks/scalability_json.py
    PYTHONPATH=src python benchmarks/scalability_json.py --factors 50 125 250

The pure matching heuristic is capped at two iterations: the first
iteration's full pair scan is exactly the allocation the streaming kernels
bound, and a fixed cap keeps cells comparable across factors.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import time
import tracemalloc
from pathlib import Path

from repro.algorithms.matching_iterative import IterativeMatching
from repro.core.kernels import DEFAULT_CHUNK_ELEMENTS
from repro.core.revenue import RevenueEngine
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_scalability.json"

#: Engine construction kwargs per backend column.
BACKENDS = {
    "unchunked-float64": {"chunk_elements": None},
    "streaming-float64": {},
    "streaming-float32": {"precision": "float32"},
    "streaming-sparse": {"storage": "sparse"},
}


def measure_cell(wtp, backend_kwargs: dict, max_iterations: int) -> dict:
    """One (backend, factor) cell: fit pure matching under tracemalloc."""
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    tracemalloc.start()
    started = time.perf_counter()
    engine = RevenueEngine(wtp, **backend_kwargs)
    result = IterativeMatching(strategy="pure", max_iterations=max_iterations).fit(engine)
    wall = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "wall_seconds": round(wall, 4),
        "tracemalloc_peak_mb": round(peak / 2**20, 2),
        "ru_maxrss_mb": round(rss_after / 1024, 2),  # Linux reports KiB
        "ru_maxrss_grew": bool(rss_after > rss_before),
        "expected_revenue": result.expected_revenue,
        "iterations": result.n_iterations,
    }


def run(factors, base_users, base_items, seed, max_iterations, backends) -> dict:
    dataset = amazon_books_like(n_users=base_users, n_items=base_items, seed=seed)
    base_wtp = wtp_from_ratings(dataset, conversion=1.25)
    runs = []
    for factor in factors:
        wtp = base_wtp.clone_users(factor) if factor > 1 else base_wtp
        for backend in backends:
            cell = measure_cell(wtp, BACKENDS[backend], max_iterations)
            cell.update(
                backend=backend,
                clone_factor=factor,
                n_users=wtp.n_users,
                n_items=wtp.n_items,
            )
            runs.append(cell)
            print(
                f"factor={factor:>4} users={wtp.n_users:>8} {backend:<20} "
                f"wall={cell['wall_seconds']:>8.2f}s "
                f"peak={cell['tracemalloc_peak_mb']:>9.1f}MB "
                f"revenue={cell['expected_revenue']:.2f}"
            )
        del wtp

    largest = max(factors)
    at_largest = {r["backend"]: r for r in runs if r["clone_factor"] == largest}
    summary = {}
    if "unchunked-float64" in at_largest and "streaming-float64" in at_largest:
        before = at_largest["unchunked-float64"]
        after = at_largest["streaming-float64"]
        summary = {
            "largest_clone_factor": largest,
            "n_users_at_largest": before["n_users"],
            "peak_memory_reduction_x": round(
                before["tracemalloc_peak_mb"] / max(after["tracemalloc_peak_mb"], 1e-9), 2
            ),
            "wall_clock_speedup_x": round(
                before["wall_seconds"] / max(after["wall_seconds"], 1e-9), 2
            ),
            "revenues_identical": before["expected_revenue"] == after["expected_revenue"],
        }
    return {
        "benchmark": "scalability (Figure 7a workload, pure matching, capped iterations)",
        "base": {"n_users": base_users, "n_items": base_items, "seed": seed},
        "max_iterations": max_iterations,
        "chunk_elements": DEFAULT_CHUNK_ELEMENTS,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "summary": summary,
        "runs": runs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factors", type=int, nargs="+", default=[50, 125, 250])
    parser.add_argument("--base-users", type=int, default=400)
    parser.add_argument("--base-items", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--max-iterations", type=int, default=2)
    parser.add_argument(
        "--backends", nargs="+", choices=sorted(BACKENDS), default=list(BACKENDS)
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    report = run(
        args.factors,
        args.base_users,
        args.base_items,
        args.seed,
        args.max_iterations,
        args.backends,
    )
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nwrote {args.output}")
    if report["summary"]:
        print(json.dumps(report["summary"], indent=1))


if __name__ == "__main__":
    main()

"""Figure 7 — scalability in users (a) and items (b).

Shape targets: runtime grows roughly *linearly* with the user clone factor
(pricing is O(M)) and *polynomially* with the item count (straight lines
in log-log space, slope ≲ 3).
"""

import numpy as np

from repro.experiments import figure7_items, figure7_users

METHODS = ("pure_matching", "pure_greedy", "mixed_matching", "mixed_greedy")


def test_fig7a_users(benchmark, archive):
    series = benchmark.pedantic(
        lambda: figure7_users(factors=(1, 2, 3, 4), methods=METHODS),
        rounds=1, iterations=1,
    )
    archive("fig7a_users", series.render())
    # Only the mixed methods run long enough (seconds) for wall-clock
    # trends to rise above scheduler noise; the pure methods finish in
    # tens of milliseconds at this scale and are reported but not asserted.
    for name in ("mixed_matching", "mixed_greedy"):
        times = np.array(series.series[name])
        # Clear growth with the user clone factor...
        assert times[-1] > 2.0 * times[0], f"{name}: runtime must grow with users"
        # ...but sub-quadratic overall: time(4x) well below 16x time(1x).
        assert times[-1] < times[0] * 16.0, name


def test_fig7b_items(benchmark, archive):
    series = benchmark.pedantic(
        lambda: figure7_items(item_counts=(30, 60, 120), n_users=400, methods=METHODS),
        rounds=1, iterations=1,
    )
    archive("fig7b_items", series.render())
    items = np.array(series.x_values, dtype=float)
    for name in METHODS:
        times = np.array(series.series[name])
        assert np.all(np.diff(times) > 0), f"{name}: runtime must grow with items"
        # Polynomial: log-log slope bounded by the analytical N^2.5-ish.
        slope = np.polyfit(np.log(items), np.log(times), 1)[0]
        assert slope < 4.0, f"{name}: log-log slope {slope:.2f} too steep"

"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, prints the
reproduced rows/series next to the paper's reported values, and archives
the rendering under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def archive(results_dir):
    """Callable that prints a rendering and archives it by name."""

    def _archive(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _archive

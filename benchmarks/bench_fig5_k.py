"""Figure 5 — revenue versus the maximum bundle size k.

Shape targets: k=1 equals Components exactly; k=2 starts to gain; revenue
keeps growing for k ≥ 3 at a declining rate (the paper's motivation for
heuristics beyond the optimal 2-sized solver).
"""

import numpy as np

from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.experiments import figure5

K_VALUES = (1, 2, 3, 4, 6, None)


def _run():
    dataset = amazon_books_like(n_users=600, n_items=100, seed=0)
    return figure5(k_values=K_VALUES, wtp=wtp_from_ratings(dataset))


def test_fig5_max_size(benchmark, archive):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    archive("fig5_k", series.render())

    components = np.array(series.series["components"])
    for name in ("pure_matching", "pure_greedy", "mixed_matching", "mixed_greedy"):
        curve = np.array(series.series[name])
        # k = 1 is exactly Components.
        assert abs(curve[0] - components[0]) < 1e-9, name
        # Revenue is (weakly) monotone in k and strictly grows somewhere
        # beyond k=2 — size-3+ bundles add revenue (the NP-hard regime).
        assert np.all(np.diff(curve) >= -1e-9), name
        assert curve[-1] >= curve[0]
    assert np.array(series.series["mixed_matching"])[-1] > components[0]
    mixed = np.array(series.series["mixed_matching"])
    assert mixed[-1] > mixed[1] + 1e-12, "k>=3 must add revenue over k=2"

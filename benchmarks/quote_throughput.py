"""CI serving-smoke gate: batched serving must be bit-identical, and fast.

The :class:`repro.serving.QuoteServer` exists on one promise: a quote
answered from warm, micro-batched state is **bit-identical** to calling
``solution.quote()`` cold on the same rows.  This script makes CI hold it
to that promise, and records what the warm path buys:

* fits a mixed menu on the synthetic Amazon-Books workload and serves it;
* fires a mixed stream of quote requests (1–16 consumer rows each) through
  the in-process server path — admission, micro-batching, warm kernel —
  and asserts every payment vector, revenue, and coverage equals the cold
  ``solution.quote()`` answer exactly (``==``, not ``allclose``);
* hot-reloads a second solution mid-stream and asserts the same for every
  post-reload response against the *new* solution, fingerprint-pinned;
* measures sustained quotes/sec plus p50/p99 per-request latency under
  concurrent load, and the cold-vs-warm single-request speedup;
* with ``--workers N`` (N >= 2), additionally boots a supervised
  multi-process fleet (:class:`repro.serving.ServingSupervisor`) behind
  one socket and holds every HTTP-routed quote to the same bit-identity
  gate; ``--chaos`` then SIGKILLs one worker mid-load and asserts **zero**
  client-visible failures — the respawn and routing failover must absorb
  the crash entirely;
* writes ``BENCH_serving.json`` (uploaded as a CI artifact) either way —
  the fleet and chaos legs ride in the same report next to the
  single-process rows.

With fewer than two cores the event loop and the kernel worker thread
share one CPU and the latency numbers measure scheduling, not serving —
the script prints a skip notice, records ``"skipped"``, and exits 0 (the
skip is visible in the artifact, not silent), mirroring ``perf_smoke.py``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/quote_throughput.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import signal
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.api import BundlingSolver, EngineConfig
from repro.core.kernels import available_cpus
from repro.data.synthetic import amazon_books_like
from repro.data.wtp_mapping import wtp_from_ratings
from repro.obs.metrics import parse_exposition
from repro.serving import QuoteServer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _fit_solutions(seed: int):
    """The served solution and a distinct replacement for the reload leg."""
    dataset = amazon_books_like(n_users=400, n_items=60, seed=seed)
    wtp = wtp_from_ratings(dataset, conversion=1.25)
    primary = BundlingSolver("mixed_greedy", EngineConfig(theta=0.1)).fit(wtp)
    replacement = BundlingSolver("components", EngineConfig(theta=0.1)).fit(wtp)
    return primary, replacement, wtp.n_items


def _requests(rng, n_requests: int, n_items: int):
    """A mixed stream of request row blocks (1–16 consumers each)."""
    sizes = rng.integers(1, 17, size=n_requests)
    return [rng.uniform(0.0, 12.0, size=(int(size), n_items)) for size in sizes]


def _identical(served, cold) -> bool:
    return (
        np.array_equal(
            np.asarray(served.payments, dtype=np.float64),
            np.asarray(cold.payments, dtype=np.float64),
        )
        and served.revenue == cold.revenue
        and served.coverage == cold.coverage
    )


async def _run_serving(args, primary, replacement, n_items, report) -> bool:
    rng = np.random.default_rng(7)
    server = QuoteServer(
        primary,
        deadline=10.0,
        queue_depth=max(args.concurrency * 4, 64),
        batch_window=args.batch_window,
        max_batch=args.max_batch,
    )
    await server.start("127.0.0.1", 0)
    try:
        # ---------------------------------------------------- bit-identity
        requests = _requests(rng, args.identity_requests, n_items)
        served = await asyncio.gather(*[server.quote(rows) for rows in requests])
        mismatches = sum(
            not _identical(quote, primary.quote(rows))
            for quote, rows in zip(served, requests)
        )
        fingerprint_ok = all(
            quote.fingerprint == primary.fingerprint() for quote in served
        )
        batched_any = any(quote.batched for quote in served)

        # ------------------------------------------------------ hot reload
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "replacement.json"
            replacement.save(path)
            previous, current = await server.reload(path)
        reload_requests = _requests(rng, args.identity_requests // 2 or 1, n_items)
        reloaded = await asyncio.gather(
            *[server.quote(rows) for rows in reload_requests]
        )
        reload_mismatches = sum(
            not _identical(quote, replacement.quote(rows))
            for quote, rows in zip(reloaded, reload_requests)
        )
        reload_fingerprint_ok = (
            previous == primary.fingerprint()
            and current == replacement.fingerprint()
            and all(quote.fingerprint == current for quote in reloaded)
        )

        # ------------------------------------------------------ throughput
        latencies: list[float] = []
        loads = _requests(rng, args.throughput_requests, n_items)

        async def client(blocks) -> None:
            loop = asyncio.get_running_loop()
            for rows in blocks:
                started = loop.time()
                await server.quote(rows)
                latencies.append(loop.time() - started)

        per_client = [
            loads[index :: args.concurrency] for index in range(args.concurrency)
        ]
        started = time.perf_counter()
        await asyncio.gather(*[client(blocks) for blocks in per_client])
        wall = time.perf_counter() - started

        # Cold baseline: per-request ``solution.quote()`` with its engine
        # rebuild, the path the warm server replaces.
        cold_sample = loads[: min(len(loads), 50)]
        started = time.perf_counter()
        for rows in cold_sample:
            replacement.quote(rows)
        cold_wall = time.perf_counter() - started
        cold_per_request = cold_wall / len(cold_sample)
        warm_per_request = wall / len(loads)

        latencies.sort()
        report["summary"] = {
            "identity_requests": len(requests) + len(reload_requests),
            "bit_identical": mismatches == 0 and reload_mismatches == 0,
            "mismatches": mismatches,
            "reload_mismatches": reload_mismatches,
            "fingerprints_coherent": fingerprint_ok and reload_fingerprint_ok,
            "batched_responses_seen": batched_any,
            "throughput_requests": len(loads),
            "concurrency": args.concurrency,
            "quotes_per_second": round(len(loads) / wall, 1),
            "latency_p50_ms": round(1e3 * statistics.median(latencies), 3),
            "latency_p99_ms": round(
                1e3 * latencies[int(0.99 * (len(latencies) - 1))], 3
            ),
            "cold_quote_ms": round(1e3 * cold_per_request, 3),
            "warm_quote_ms": round(1e3 * warm_per_request, 3),
            "warm_speedup_x": round(cold_per_request / max(warm_per_request, 1e-9), 2),
            "gate": "every served quote bit-identical to solution.quote(), "
            "fingerprints coherent across reload",
        }
        report["server"] = {
            "batch_window_seconds": args.batch_window,
            "max_batch": args.max_batch,
            "health": server.health(),
        }
        passed = (
            mismatches == 0
            and reload_mismatches == 0
            and fingerprint_ok
            and reload_fingerprint_ok
            and batched_any
        )
        report["summary"]["passed"] = passed
        return passed
    finally:
        await server.stop()


async def _metrics_overhead(args, primary, n_items, report) -> bool:
    """Registry-on vs registry-off quotes/sec through the warm server path.

    Best-of-N repeats on each side denoise a contended box; the recorded
    ``overhead_pct`` is the acceptance number for the zero-overhead-when-
    disabled contract (instrumentation must cost < 2% when enabled, and
    literally one None-check when not).
    """
    rng = np.random.default_rng(23)
    blocks = _requests(rng, args.overhead_requests, n_items)

    async def measure() -> float:
        server = QuoteServer(
            primary,
            deadline=30.0,
            queue_depth=max(len(blocks), 64),
            batch_window=args.batch_window,
            max_batch=args.max_batch,
        )
        await server.start("127.0.0.1", 0)
        try:
            best = None
            for repeat in range(args.overhead_repeats + 1):
                started = time.perf_counter()
                for index in range(0, len(blocks), 16):
                    await asyncio.gather(
                        *[server.quote(rows) for rows in blocks[index : index + 16]]
                    )
                wall = time.perf_counter() - started
                if repeat == 0:
                    continue  # warm-up pass
                best = wall if best is None or wall < best else best
            return len(blocks) / best
        finally:
            await server.stop()

    obs.disable_metrics()
    disabled_qps = await measure()
    registry = obs.enable_metrics()
    try:
        enabled_qps = await measure()
        exposition_ok = bool(parse_exposition(registry.render()))
    finally:
        obs.disable_metrics()
    overhead_pct = 100.0 * (disabled_qps - enabled_qps) / disabled_qps
    passed = overhead_pct < 2.0 and exposition_ok
    report["metrics_overhead"] = {
        "requests_per_side": len(blocks),
        "repeats": args.overhead_repeats,
        "disabled_qps": round(disabled_qps, 1),
        "enabled_qps": round(enabled_qps, 1),
        "overhead_pct": round(overhead_pct, 2),
        "exposition_parses": exposition_ok,
        "passed": passed,
        "gate": "metrics-on quotes/sec within 2% of metrics-off",
    }
    return passed


def _monotonic_counters(before: dict, after: dict) -> list[str]:
    """Counter series that moved backwards between two scrapes.

    Series carrying a ``worker`` label are excluded: those come from
    per-process registries that legitimately reset when a worker is
    respawned.  Supervisor-owned series (including slot-labelled ones)
    must never regress.
    """
    regressions = []
    for name, family in before.items():
        if family["type"] != "counter":
            continue
        for key, value in family["samples"].items():
            if 'worker="' in key:
                continue
            if after.get(name, {}).get("samples", {}).get(key, 0.0) < value:
                regressions.append(key)
    return regressions


async def _fleet_scrape(host, port):
    """GET /metrics returning the raw exposition text."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                "GET /metrics HTTP/1.1\r\nHost: bench\r\n"
                "Content-Length: 0\r\nConnection: close\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, content = raw.partition(b"\r\n\r\n")
    status = int(head.decode("latin-1").split("\r\n")[0].split(" ", 2)[1])
    return status, content.decode("utf-8")


async def _fleet_http(host, port, method, path, payload=None):
    """One HTTP exchange against the fleet (fresh connection each time)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, content = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(content) if content else None


def _fleet_identical(headers, body, cold, fingerprint) -> bool:
    payments = np.array([float.fromhex(p) for p in body["payments_hex"]])
    return (
        np.array_equal(payments, np.asarray(cold.payments, dtype=np.float64))
        and float.fromhex(body["revenue_hex"]) == cold.revenue
        and headers.get("x-solution-fingerprint") == fingerprint
    )


async def _run_fleet(args, primary, n_items, report) -> bool:
    """The multi-process leg: routed bit-identity, then the chaos kill."""
    from repro.serving import ServingSupervisor

    rng = np.random.default_rng(11)
    fingerprint = primary.fingerprint()
    if args.metrics:
        # Enabled before the fleet boots: workers read the parent's
        # enablement at spawn time and ship snapshots up their heartbeats.
        obs.enable_metrics()
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "primary.json"
        primary.save(path)
        fleet = ServingSupervisor(
            path,
            workers=args.workers,
            deadline=10.0,
            queue_depth=max(args.concurrency * 4, 64),
            batch_window=args.batch_window,
            max_batch=args.max_batch,
            route_budget=60.0,
        )
        started = time.perf_counter()
        host, port = await fleet.start("127.0.0.1", 0)
        launch_seconds = time.perf_counter() - started
        try:
            # ------------------------------------------ routed bit-identity
            requests = _requests(rng, args.identity_requests, n_items)
            served = await asyncio.gather(
                *[
                    _fleet_http(host, port, "POST", "/quote", {"rows": rows.tolist()})
                    for rows in requests
                ]
            )
            failures = sum(status != 200 for status, _, _ in served)
            mismatches = sum(
                status == 200
                and not _fleet_identical(
                    headers, body, primary.quote(rows), fingerprint
                )
                for (status, headers, body), rows in zip(served, requests)
            )

            # -------------------------------------------- pre-chaos scrape
            first_scrape = None
            if args.metrics:
                scrape_status, text = await _fleet_scrape(host, port)
                first_scrape = parse_exposition(text) if scrape_status == 200 else None

            # ------------------------------------------------- chaos (kill)
            chaos = {"ran": False}
            if args.chaos:
                blocks = _requests(rng, args.chaos_requests, n_items)
                chaos_failures = 0
                chaos_mismatches = 0

                async def chaos_client(client_blocks) -> None:
                    nonlocal chaos_failures, chaos_mismatches
                    for rows in client_blocks:
                        status, headers, body = await _fleet_http(
                            host, port, "POST", "/quote", {"rows": rows.tolist()}
                        )
                        if status != 200:
                            chaos_failures += 1
                        elif not _fleet_identical(
                            headers, body, primary.quote(rows), fingerprint
                        ):
                            chaos_mismatches += 1

                async def killer() -> None:
                    await asyncio.sleep(0.2)
                    victim = next(
                        (h for h in fleet.handles if h.phase == "ready" and h.pid),
                        None,
                    )
                    if victim is not None:
                        chaos["killed_pid"] = victim.pid
                        os.kill(victim.pid, signal.SIGKILL)

                per_client = [
                    blocks[index :: args.concurrency]
                    for index in range(args.concurrency)
                ]
                chaos_started = time.perf_counter()
                await asyncio.gather(
                    *[chaos_client(client_blocks) for client_blocks in per_client],
                    killer(),
                )
                chaos = {
                    "ran": True,
                    "killed_pid": chaos.get("killed_pid"),
                    "requests": len(blocks),
                    "failed_quotes": chaos_failures,
                    "mismatches": chaos_mismatches,
                    "wall_seconds": round(time.perf_counter() - chaos_started, 3),
                    "gate": "SIGKILL one worker mid-load: zero client-visible "
                    "failures, every quote still bit-identical",
                }

            # ------------------------------------------------ metrics smoke
            if args.metrics:
                smoke = {"ran": True, "gate": (
                    "exposition parses, non-worker counters monotonic "
                    "across scrapes, respawn counted after the kill"
                )}
                try:
                    scrape_status, text = await _fleet_scrape(host, port)
                    second_scrape = parse_exposition(text)
                    smoke["exposition_parses"] = scrape_status == 200
                    regressions = (
                        _monotonic_counters(first_scrape, second_scrape)
                        if first_scrape is not None
                        else ["first scrape failed"]
                    )
                    smoke["counter_regressions"] = regressions
                    smoke["counters_monotonic"] = not regressions
                    respawn_total = sum(
                        second_scrape.get("repro_worker_respawn_total", {})
                        .get("samples", {})
                        .values()
                    )
                    smoke["worker_respawn_total"] = respawn_total
                    worker_quotes = sum(
                        value
                        for key, value in second_scrape.get(
                            "repro_quotes_total", {}
                        ).get("samples", {}).items()
                        if 'worker="' in key
                    )
                    smoke["derived"] = {
                        "fleet_requests_total": sum(
                            second_scrape.get("repro_fleet_requests_total", {})
                            .get("samples", {})
                            .values()
                        ),
                        "worker_quotes_total": worker_quotes,
                        "worker_deaths_total": sum(
                            second_scrape.get("repro_worker_deaths_total", {})
                            .get("samples", {})
                            .values()
                        ),
                        "respawn_total": respawn_total,
                    }
                    smoke["passed"] = (
                        smoke["exposition_parses"]
                        and smoke["counters_monotonic"]
                        and (not chaos["ran"] or respawn_total >= 1)
                    )
                except ValueError as exc:
                    smoke.update(
                        exposition_parses=False,
                        parse_error=str(exc),
                        passed=False,
                    )
                report["metrics_smoke"] = smoke

            health = fleet.health()
            passed = failures == 0 and mismatches == 0
            if report.get("metrics_smoke", {}).get("ran"):
                passed = passed and report["metrics_smoke"]["passed"]
            if chaos["ran"]:
                passed = (
                    passed
                    and chaos["failed_quotes"] == 0
                    and chaos["mismatches"] == 0
                    and health["counters"]["worker_deaths"] >= 1
                    and health["counters"]["respawns"] >= 1
                )
            report["fleet"] = {
                "workers": args.workers,
                "launch_seconds": round(launch_seconds, 3),
                "identity_requests": len(requests),
                "failed_quotes": failures,
                "mismatches": mismatches,
                "chaos": chaos,
                "health": health,
                "passed": passed,
                "gate": "every HTTP-routed quote bit-identical to "
                "solution.quote(), zero failures across a worker kill",
            }
            return passed
        finally:
            await fleet.stop()


def build_report(args) -> tuple[dict, int]:
    """The serving-smoke report plus the process exit code."""
    cpu_count = available_cpus()
    report = {
        "benchmark": "serving-smoke (warm batched quoting vs cold solution.quote)",
        "base": {"n_users": 400, "n_items": 60, "seed": 2},
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
    }
    if cpu_count < 2 and not args.force:
        report["skipped"] = (
            f"only {cpu_count} CPU available - the event loop and the kernel "
            "worker thread would measure scheduling, not serving"
        )
        print(f"SKIP: {report['skipped']}")
        return report, 0
    if cpu_count < 2:
        report["note"] = (
            "forced run on a single CPU: latency/throughput numbers include "
            "event-loop/kernel-thread contention; bit-identity is unaffected"
        )

    primary, replacement, n_items = _fit_solutions(seed=2)
    passed = asyncio.run(_run_serving(args, primary, replacement, n_items, report))
    print(json.dumps(report["summary"], indent=1))
    if not report["summary"]["bit_identical"]:
        print("FAIL: served quotes differ from solution.quote()", file=sys.stderr)
    elif not passed:
        print("FAIL: serving gate not met (see summary)", file=sys.stderr)
    if args.metrics:
        overhead_passed = asyncio.run(
            _metrics_overhead(args, primary, n_items, report)
        )
        print(json.dumps(report["metrics_overhead"], indent=1))
        if not overhead_passed:
            # Recorded, not gating: a contended CI box can blur a sub-2%
            # delta, and the artifact makes any real regression visible.
            print(
                "note: metrics overhead above the 2% target on this box",
                file=sys.stderr,
            )
    if args.workers >= 2:
        fleet_passed = asyncio.run(_run_fleet(args, primary, n_items, report))
        print(json.dumps(report["fleet"], indent=1, default=str))
        if "metrics_smoke" in report:
            print(json.dumps(report["metrics_smoke"], indent=1))
        if not fleet_passed:
            print("FAIL: fleet gate not met (see fleet report)", file=sys.stderr)
        passed = passed and fleet_passed
    elif args.chaos:
        print("note: --chaos needs --workers >= 2; chaos leg skipped")
    return report, 0 if passed else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--identity-requests", type=int, default=60,
        help="requests in the bit-identity leg (plus half after the reload)",
    )
    parser.add_argument(
        "--throughput-requests", type=int, default=400,
        help="requests in the throughput leg",
    )
    parser.add_argument(
        "--concurrency", type=int, default=16,
        help="concurrent in-process clients during the throughput leg",
    )
    parser.add_argument("--batch-window", type=float, default=0.002)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="also run the supervised-fleet leg with this many worker "
        "processes (>= 2 to engage)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="during the fleet leg, SIGKILL one worker mid-load and require "
        "zero client-visible failures (needs --workers >= 2)",
    )
    parser.add_argument(
        "--chaos-requests", type=int, default=120,
        help="requests fired during the chaos leg",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="run the observability legs: registry-on vs registry-off "
        "overhead microbench, and (with --workers >= 2) /metrics scrape "
        "assertions — exposition parses, non-worker counters monotonic, "
        "worker_respawn_total increments after the chaos kill",
    )
    parser.add_argument(
        "--overhead-requests", type=int, default=200,
        help="requests per side of the metrics-overhead microbench",
    )
    parser.add_argument(
        "--overhead-repeats", type=int, default=3,
        help="timed repeats per side (best-of, after one warm-up pass)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="run even on <2 cores (numbers then include scheduling "
        "contention; the CI gate runs on real cores)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    report, code = build_report(args)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return code


if __name__ == "__main__":
    sys.exit(main())

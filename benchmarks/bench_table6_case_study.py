"""Table 6 — the mixed-bundling case study, step by step.

Exact targets (engineered dataset, see ``repro.data.toy``): individual
prices 7.99/6.99/7.99 with 10/9/9 buyers; the (Two Little Lies, Born in
Fire) bundle at 11.20 adds one brand-new buyer (+11.20); (Sands, Born in
Fire) at 13.91 adds one upgrader (+5.92); (Sands, Two Little Lies) is not
viable; the final size-3 bundle at 13.91 adds one upgrader (+5.92).
"""

from repro.experiments import paper_values, table6


def test_table6_case_study(benchmark, archive):
    result = benchmark.pedantic(table6, rounds=1, iterations=1)
    archive("table6_case_study", result.render())

    rows = {row[0]: row for row in result.rows}
    paper = {" / ".join(b): (p, buyers, rev, sel) for b, p, buyers, rev, sel in paper_values.TABLE6}

    assert rows["The Sands of Time"][1:] == [7.99, 10, 79.90, True]
    assert rows["Two Little Lies"][1:] == [6.99, 9, 62.91, True]
    assert rows["Born in Fire"][1:] == [7.99, 9, 71.91, True]
    pair = rows["(Two Little Lies, Born in Fire)"]
    assert pair[1:] == [11.20, 1, 11.20, True]
    other = rows["(The Sands of Time, Born in Fire)"]
    assert other[1:] == [13.91, 1, 5.92, False]
    triple = rows["(The Sands of Time, Two Little Lies, Born in Fire)"]
    assert triple[1:] == [13.91, 1, 5.92, True]
    # Every selected row matches the paper's selection.
    for title, (price, buyers, revenue, selected) in paper.items():
        if "/" not in title:
            assert rows[title][4] == selected
